#include <gtest/gtest.h>

#include "core/relation_table.h"

namespace dcfs {
namespace {

TEST(RelationTableTest, RenameEntryTriggersOnCreate) {
  RelationTable table(seconds(2));
  // Word, Fig. 5: rename f -> t0 creates entry (f -> t0).
  table.add("/f", "/t0", seconds(0));
  EXPECT_EQ(table.size(), 1u);

  // Creating "/f" again triggers delta encoding against "/t0".
  auto entry = table.take_trigger("/f", milliseconds(500));
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->src, "/f");
  EXPECT_EQ(entry->dst, "/t0");
  EXPECT_EQ(table.size(), 0u);  // entry removed on trigger
}

TEST(RelationTableTest, NoTriggerForUnrelatedName) {
  RelationTable table(seconds(2));
  table.add("/f", "/t0", 0);
  EXPECT_FALSE(table.take_trigger("/g", 0).has_value());
  EXPECT_EQ(table.size(), 1u);
}

TEST(RelationTableTest, StaleEntryDoesNotTrigger) {
  RelationTable table(seconds(2));
  table.add("/f", "/t0", seconds(0));
  EXPECT_FALSE(table.take_trigger("/f", seconds(5)).has_value());
}

TEST(RelationTableTest, ExpiryRemovesOldEntriesAndReportsUnlinkOnes) {
  RelationTable table(seconds(2));
  table.add("/a", "/tmp/p1", seconds(0), /*from_unlink=*/true);
  table.add("/b", "/t0", seconds(1));

  std::vector<std::string> expired;
  table.expire(seconds(2) + 1, [&](const RelationTable::Entry& entry) {
    if (entry.from_unlink) expired.push_back(entry.dst);
  });
  EXPECT_EQ(table.size(), 1u);  // /b entry still fresh
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0], "/tmp/p1");

  expired.clear();
  table.expire(seconds(4), [&](const RelationTable::Entry& entry) {
    expired.push_back(entry.src);
  });
  EXPECT_EQ(table.size(), 0u);
  // The rename entry also expires but is reported (caller filters).
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0], "/b");
}

TEST(RelationTableTest, FreshEntrySupersedesSameSrc) {
  RelationTable table(seconds(2));
  table.add("/f", "/old", seconds(0));
  table.add("/f", "/new", seconds(1));
  EXPECT_EQ(table.size(), 1u);
  auto entry = table.take_trigger("/f", seconds(1));
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->dst, "/new");
}

TEST(RelationTableTest, InvalidateRemovesBySrcOrDst) {
  RelationTable table(seconds(2));
  table.add("/a", "/b", 0);
  table.add("/c", "/d", 0);
  table.invalidate("/b");  // matches dst of first
  EXPECT_EQ(table.size(), 1u);
  table.invalidate("/c");  // matches src of second
  EXPECT_EQ(table.size(), 0u);
}

TEST(RelationTableTest, ConfigurableTimeout) {
  RelationTable table(seconds(1));
  table.add("/f", "/t0", seconds(0));
  EXPECT_FALSE(table.take_trigger("/f", seconds(1) + 1).has_value());

  RelationTable longer(seconds(3));
  longer.add("/f", "/t0", seconds(0));
  EXPECT_TRUE(longer.take_trigger("/f", seconds(2)).has_value());
}

TEST(RelationTableTest, MultipleEntriesIndependentTriggers) {
  RelationTable table(seconds(2));
  table.add("/a", "/a0", 0);
  table.add("/b", "/b0", 0);
  auto entry = table.take_trigger("/b", 0);
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->dst, "/b0");
  EXPECT_EQ(table.size(), 1u);
  EXPECT_TRUE(table.take_trigger("/a", 0).has_value());
}

}  // namespace
}  // namespace dcfs
