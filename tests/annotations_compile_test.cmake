# Negative-compile driver for the Clang Thread Safety annotations
# (src/chk/annotations.h).  Invoked per snippet by tests/CMakeLists.txt:
#
#   cmake -DCXX=<clang++> -DSNIPPET=<file.cc> -DSRC_DIR=<repo>/src
#         -DEXPECT=PASS|FAIL -P annotations_compile_test.cmake
#
# FAIL snippets must be rejected *by the thread-safety analysis* — a
# snippet that fails to compile for any other reason (syntax rot, missing
# include) is reported as a harness bug, not a pass.  The snippets compile
# in the DCFS_CHK=OFF passthrough configuration on purpose: the wrappers
# must carry their capability annotations in both modes.

foreach(var CXX SNIPPET SRC_DIR EXPECT)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "annotations_compile_test: ${var} not set")
  endif()
endforeach()

execute_process(
  COMMAND ${CXX} -std=c++20 -fsyntax-only
          -Wthread-safety -Wthread-safety-beta -Werror
          -I ${SRC_DIR} ${SNIPPET}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)

if(EXPECT STREQUAL "PASS")
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
      "control snippet must compile cleanly but was rejected:\n${err}")
  endif()
elseif(EXPECT STREQUAL "FAIL")
  if(rc EQUAL 0)
    message(FATAL_ERROR
      "snippet compiled cleanly but must be rejected by -Wthread-safety: "
      "${SNIPPET}")
  endif()
  if(NOT err MATCHES "thread-safety")
    message(FATAL_ERROR
      "snippet was rejected, but not by the thread-safety analysis "
      "(harness bug?):\n${err}")
  endif()
else()
  message(FATAL_ERROR "EXPECT must be PASS or FAIL, got '${EXPECT}'")
endif()
