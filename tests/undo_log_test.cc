#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/undo_log.h"

namespace dcfs {
namespace {

TEST(UndoLogTest, ReconstructsAfterOverwrite) {
  UndoLog undo;
  Bytes file = to_bytes("hello world");
  // Overwrite "world" with "WORLD": preserve the old bytes first.
  undo.record_write("/f", 6, to_bytes("world"), file.size());
  std::copy_n("WORLD", 5, file.begin() + 6);

  Result<Bytes> old_version = undo.reconstruct("/f", file);
  ASSERT_TRUE(old_version.is_ok());
  EXPECT_EQ(as_text(*old_version), "hello world");
}

TEST(UndoLogTest, FirstPreservedBytesWin) {
  UndoLog undo;
  Bytes file = to_bytes("AAAA");
  undo.record_write("/f", 0, to_bytes("AAAA"), 4);  // true old bytes
  file = to_bytes("BBBB");
  undo.record_write("/f", 0, to_bytes("BBBB"), 4);  // stale: already covered
  file = to_bytes("CCCC");

  EXPECT_EQ(as_text(*undo.reconstruct("/f", file)), "AAAA");
}

TEST(UndoLogTest, PartialOverlapPreservesOnlyUncovered) {
  UndoLog undo;
  // Old file: 0123456789
  undo.record_write("/f", 2, to_bytes("2345"), 10);   // covers [2,6)
  undo.record_write("/f", 4, to_bytes("XX67"), 10);   // [4,6) covered; [6,8) new
  // Current content after both writes (values don't matter for coverage):
  const Bytes current = to_bytes("01YYYYZZ89");

  Result<Bytes> old_version = undo.reconstruct("/f", current);
  ASSERT_TRUE(old_version.is_ok());
  // [2,6) from first record, [6,8) from second record's uncovered tail.
  EXPECT_EQ(as_text(*old_version), "0123456789");
}

TEST(UndoLogTest, ExtendingWriteRestoresOriginalSize) {
  UndoLog undo;
  Bytes file = to_bytes("abc");
  undo.record_write("/f", 3, {}, 3);  // append: nothing overwritten
  append(file, to_bytes("defgh"));

  Result<Bytes> old_version = undo.reconstruct("/f", file);
  ASSERT_TRUE(old_version.is_ok());
  EXPECT_EQ(as_text(*old_version), "abc");
}

TEST(UndoLogTest, TruncateTailIsRestored) {
  UndoLog undo;
  Bytes file = to_bytes("abcdef");
  undo.record_truncate("/f", 6, to_bytes("def"));
  file.resize(3);

  Result<Bytes> old_version = undo.reconstruct("/f", file);
  ASSERT_TRUE(old_version.is_ok());
  EXPECT_EQ(as_text(*old_version), "abcdef");
}

TEST(UndoLogTest, UnknownPathFails) {
  UndoLog undo;
  EXPECT_EQ(undo.reconstruct("/nope", {}).code(), Errc::not_found);
  EXPECT_FALSE(undo.has("/nope"));
  EXPECT_EQ(undo.preserved_bytes("/nope"), 0u);
}

TEST(UndoLogTest, DropAndRename) {
  UndoLog undo;
  undo.record_write("/a", 0, to_bytes("x"), 1);
  EXPECT_TRUE(undo.has("/a"));

  undo.rename("/a", "/b");
  EXPECT_FALSE(undo.has("/a"));
  EXPECT_TRUE(undo.has("/b"));
  EXPECT_EQ(undo.preserved_bytes("/b"), 1u);

  undo.drop("/b");
  EXPECT_FALSE(undo.has("/b"));
}

TEST(UndoLogTest, RandomizedReconstructionMatchesTrueOldVersion) {
  Rng rng(77);
  for (int round = 0; round < 20; ++round) {
    UndoLog undo;
    const Bytes original = rng.bytes(2000);
    Bytes current = original;

    for (int write = 0; write < 30; ++write) {
      const std::uint64_t size_before = current.size();
      const std::uint64_t offset = rng.next_below(current.size() + 100);
      const Bytes data = rng.bytes(1 + rng.next_below(200));
      // Capture what exists in the overwritten range.
      Bytes overwritten;
      if (offset < current.size()) {
        const std::uint64_t n =
            std::min<std::uint64_t>(data.size(), current.size() - offset);
        overwritten.assign(
            current.begin() + static_cast<std::ptrdiff_t>(offset),
            current.begin() + static_cast<std::ptrdiff_t>(offset + n));
      }
      undo.record_write("/f", offset, overwritten, size_before);
      if (offset + data.size() > current.size()) {
        current.resize(offset + data.size(), 0);
      }
      std::copy(data.begin(), data.end(),
                current.begin() + static_cast<std::ptrdiff_t>(offset));
    }

    Result<Bytes> reconstructed = undo.reconstruct("/f", current);
    ASSERT_TRUE(reconstructed.is_ok());
    EXPECT_EQ(*reconstructed, original) << "round " << round;
  }
}

}  // namespace
}  // namespace dcfs
