// Property test: MemFs against a trivially-correct reference model.
//
// The model is a flat map path -> content plus a directory set; hard links
// are modeled as shared content ids.  Random op sequences must leave MemFs
// and the model in identical states, and MemFs must never crash or leak
// (used_bytes returns to the model's accounting).
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>

#include "common/rng.h"
#include "vfs/memfs.h"
#include "vfs/path.h"

namespace dcfs {
namespace {

/// Reference model with POSIX-ish semantics (shared content via shared_ptr
/// models hard links).
class ModelFs {
 public:
  ModelFs() { dirs_.insert("/"); }

  Status create(const std::string& path) {
    if (files_.contains(path) || dirs_.contains(path)) {
      return Status{Errc::already_exists};
    }
    if (!dirs_.contains(path::dirname(path))) return Status{Errc::not_found};
    files_[path] = std::make_shared<Bytes>();
    return Status::ok();
  }

  Status write(const std::string& path, std::uint64_t offset, ByteSpan data) {
    const auto it = files_.find(path);
    if (it == files_.end()) return Status{Errc::not_found};
    Bytes& content = *it->second;
    if (offset + data.size() > content.size()) {
      content.resize(offset + data.size(), 0);
    }
    std::copy(data.begin(), data.end(),
              content.begin() + static_cast<std::ptrdiff_t>(offset));
    return Status::ok();
  }

  Status truncate(const std::string& path, std::uint64_t size) {
    const auto it = files_.find(path);
    if (it == files_.end()) return Status{Errc::not_found};
    it->second->resize(size, 0);
    return Status::ok();
  }

  Status rename(const std::string& from, const std::string& to) {
    if (from == to) return Status{Errc::invalid_argument};
    const auto it = files_.find(from);
    if (it == files_.end()) return Status{Errc::not_found};
    if (dirs_.contains(to)) return Status{Errc::is_a_directory};
    if (!dirs_.contains(path::dirname(to))) return Status{Errc::not_found};
    files_[to] = it->second;
    files_.erase(from);
    return Status::ok();
  }

  Status link(const std::string& from, const std::string& to) {
    const auto it = files_.find(from);
    if (it == files_.end()) return Status{Errc::not_found};
    if (files_.contains(to) || dirs_.contains(to)) {
      return Status{Errc::already_exists};
    }
    if (!dirs_.contains(path::dirname(to))) return Status{Errc::not_found};
    files_[to] = it->second;
    return Status::ok();
  }

  Status unlink(const std::string& path) {
    if (dirs_.contains(path)) return Status{Errc::is_a_directory};
    if (files_.erase(path) == 0) return Status{Errc::not_found};
    return Status::ok();
  }

  Status mkdir(const std::string& path) {
    if (dirs_.contains(path) || files_.contains(path)) {
      return Status{Errc::already_exists};
    }
    if (!dirs_.contains(path::dirname(path))) return Status{Errc::not_found};
    dirs_.insert(path);
    return Status::ok();
  }

  const std::map<std::string, std::shared_ptr<Bytes>>& files() const {
    return files_;
  }

 private:
  std::map<std::string, std::shared_ptr<Bytes>> files_;
  std::set<std::string> dirs_;
};

class MemFsPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MemFsPropertyTest, MatchesReferenceModel) {
  VirtualClock clock;
  MemFs fs(clock);
  ModelFs model;
  Rng rng(GetParam());

  fs.mkdir("/d");
  model.mkdir("/d");

  const auto random_path = [&]() {
    const std::string dir = rng.next_below(3) == 0 ? "/d" : "";
    return dir + "/f" + std::to_string(rng.next_below(6));
  };

  for (int op = 0; op < 400; ++op) {
    const std::string a = random_path();
    const std::string b = random_path();
    switch (rng.next_below(7)) {
      case 0: {  // create (+close)
        Result<FileHandle> handle = fs.create(a);
        const Status expected = model.create(a);
        ASSERT_EQ(handle.is_ok(), expected.is_ok()) << op << " create " << a;
        if (handle) fs.close(*handle);
        break;
      }
      case 1: {  // write somewhere
        const std::uint64_t offset = rng.next_below(5000);
        const Bytes data = rng.bytes(1 + rng.next_below(2000));
        Result<FileHandle> handle = fs.open(a);
        const bool model_has = model.files().contains(a);
        ASSERT_EQ(handle.is_ok(), model_has) << op << " open " << a;
        if (handle) {
          ASSERT_TRUE(fs.write(*handle, offset, data).is_ok());
          ASSERT_TRUE(model.write(a, offset, data).is_ok());
          fs.close(*handle);
        }
        break;
      }
      case 2: {  // truncate
        const std::uint64_t size = rng.next_below(8000);
        const Status real = fs.truncate(a, size);
        const Status expected = model.truncate(a, size);
        ASSERT_EQ(real.is_ok(), expected.is_ok()) << op << " trunc " << a;
        break;
      }
      case 3: {  // rename
        const Status real = fs.rename(a, b);
        const Status expected = model.rename(a, b);
        ASSERT_EQ(real.is_ok(), expected.is_ok())
            << op << " rename " << a << "->" << b;
        break;
      }
      case 4: {  // link
        const Status real = fs.link(a, b);
        const Status expected = model.link(a, b);
        ASSERT_EQ(real.is_ok(), expected.is_ok())
            << op << " link " << a << "->" << b;
        break;
      }
      case 5: {  // unlink
        const Status real = fs.unlink(a);
        const Status expected = model.unlink(a);
        ASSERT_EQ(real.is_ok(), expected.is_ok()) << op << " unlink " << a;
        break;
      }
      case 6: {  // fault injection must not disturb equivalence when
                 // mirrored into the model
        if (model.files().contains(a) && !model.files().at(a)->empty()) {
          const std::uint64_t at =
              rng.next_below(model.files().at(a)->size());
          ASSERT_TRUE(fs.corrupt_bit(a, at, 1).is_ok());
          (*model.files().at(a))[at] ^= 0x02;
        }
        break;
      }
    }
  }

  // Final state comparison: every model file exists with equal content.
  std::uint64_t total_bytes = 0;
  std::set<const Bytes*> counted;
  for (const auto& [path, content] : model.files()) {
    Result<Bytes> real = fs.read_file(path);
    ASSERT_TRUE(real.is_ok()) << path;
    EXPECT_EQ(*real, *content) << path;
    if (counted.insert(content.get()).second) {
      total_bytes += content->size();  // hard links share storage
    }
  }
  EXPECT_EQ(fs.used_bytes(), total_bytes);
  EXPECT_EQ(fs.open_handle_count(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MemFsPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 16));

}  // namespace
}  // namespace dcfs
