#include <gtest/gtest.h>

#include "baselines/dropbox_sim.h"
#include "baselines/nfs_sim.h"
#include "baselines/seafile_sim.h"
#include "common/rng.h"

namespace dcfs {
namespace {

void pump(SyncSystem& system, VirtualClock& clock, Duration duration) {
  for (Duration t = 0; t < duration; t += milliseconds(200)) {
    clock.advance(milliseconds(200));
    system.tick(clock.now());
  }
}

// ---------------------------------------------------------------------------
// DropboxSim
// ---------------------------------------------------------------------------

class DropboxTest : public ::testing::Test {
 protected:
  DropboxTest() : sim_(clock_, CostProfile::pc(), NetProfile::pc_wan()) {
    sim_.fs().mkdir("/sync");
  }
  VirtualClock clock_;
  DropboxSim sim_;
};

TEST_F(DropboxTest, FirstUploadCountsCompressedContent) {
  Rng rng(1);
  const Bytes data = rng.text(1 << 20);  // compressible
  sim_.fs().write_file("/sync/doc", data);
  pump(sim_, clock_, seconds(3));

  EXPECT_EQ(sim_.syncs_performed(), 1u);
  EXPECT_GT(sim_.traffic().up_bytes(), 0u);
  EXPECT_LT(sim_.traffic().up_bytes(), data.size());  // compression helped
  EXPECT_GT(sim_.client_cpu_ticks(), 0u);
}

TEST_F(DropboxTest, SmallEditTransfersSmallDelta) {
  Rng rng(2);
  Bytes data = rng.bytes(2 << 20);
  sim_.fs().write_file("/sync/doc", data);
  pump(sim_, clock_, seconds(3));
  const std::uint64_t baseline = sim_.traffic().up_bytes();

  data[1'000'000] ^= 1;
  sim_.fs().write_file("/sync/doc", data);
  pump(sim_, clock_, seconds(3));

  // rsync within the 4 MB block: far smaller than re-uploading 2 MB.
  EXPECT_LT(sim_.traffic().up_bytes() - baseline, 200'000u);
}

TEST_F(DropboxTest, DedupMakesIdenticalContentFree) {
  Rng rng(3);
  const Bytes data = rng.bytes(8 << 20);
  sim_.fs().write_file("/sync/a", data);
  pump(sim_, clock_, seconds(3));
  const std::uint64_t baseline = sim_.traffic().up_bytes();

  sim_.fs().write_file("/sync/b", data);  // same content, new name
  pump(sim_, clock_, seconds(3));
  // Only block metadata travels.
  EXPECT_LT(sim_.traffic().up_bytes() - baseline, 2'000u);
}

TEST_F(DropboxTest, ContentShiftDefeatsDedupAndForcesFullRescan) {
  Rng rng(4);
  Bytes data = rng.bytes(8 << 20);
  sim_.fs().write_file("/sync/doc", data);
  pump(sim_, clock_, seconds(3));
  const std::uint64_t cpu_baseline = sim_.client_cpu_ticks();

  // Reference: a 1-byte in-place edit — one dedup block changes, one
  // block-local rsync runs.
  data[6'000'000] ^= 1;
  sim_.fs().write_file("/sync/doc", data);
  pump(sim_, clock_, seconds(3));
  const std::uint64_t cpu_small_edit = sim_.client_cpu_ticks() - cpu_baseline;
  const std::uint64_t traffic_after_edit = sim_.traffic().up_bytes();

  // Insert one byte at the front: every 4 MB block hash changes, so dedup
  // offers nothing and *every* block pays the rsync signature+scan cost
  // (the shift tax the paper attributes to 4 MB-confined delta encoding).
  Bytes shifted;
  shifted.push_back(0x7F);
  append(shifted, data);
  sim_.fs().write_file("/sync/doc", shifted);
  pump(sim_, clock_, seconds(3));

  const std::uint64_t cpu_shift =
      sim_.client_cpu_ticks() - cpu_baseline - cpu_small_edit;
  EXPECT_GT(cpu_shift, cpu_small_edit);  // whole-file rescan vs one block
  // Traffic also exceeds the single-block-edit case: per-block boundary
  // losses plus per-block metadata, though rsync recovers the bulk.
  EXPECT_GT(sim_.traffic().up_bytes() - traffic_after_edit, 0u);
}

TEST_F(DropboxTest, RenameTracksDestination) {
  Rng rng(5);
  Bytes data = rng.bytes(1 << 20);
  sim_.fs().write_file("/sync/f", data);
  pump(sim_, clock_, seconds(3));
  const std::uint64_t baseline = sim_.traffic().up_bytes();

  // Word-style: write temp with a small edit, rename over the original.
  data[500'000] ^= 0xAA;
  sim_.fs().write_file("/sync/t1", data);
  sim_.fs().rename("/sync/t1", "/sync/f");
  pump(sim_, clock_, seconds(3));

  // The rsync against /sync/f's cached base keeps this far below 1 MB.
  EXPECT_LT(sim_.traffic().up_bytes() - baseline, 300'000u);
}

TEST_F(DropboxTest, DropsyncSerializesUploads) {
  DropboxConfig config;
  config.serialize_uploads = true;
  config.use_rsync = false;
  config.use_dedup = false;
  DropboxSim dropsync(clock_, CostProfile::mobile(), NetProfile::mobile_wan(),
                      config);
  dropsync.fs().mkdir("/sync");

  Rng rng(6);
  // Two quick edits: the second sync is gated behind the first upload.
  dropsync.fs().write_file("/sync/f", rng.bytes(2 << 20));
  pump(dropsync, clock_, seconds(2));
  EXPECT_EQ(dropsync.syncs_performed(), 1u);

  dropsync.fs().write_file("/sync/f", rng.bytes(2 << 20));
  pump(dropsync, clock_, seconds(2));
  // 2 MB at ~500 KB/s ≈ 4 s busy: the second sync has not fired yet.
  EXPECT_EQ(dropsync.syncs_performed(), 1u);

  pump(dropsync, clock_, seconds(10));
  EXPECT_EQ(dropsync.syncs_performed(), 2u);
}

// ---------------------------------------------------------------------------
// SeafileSim
// ---------------------------------------------------------------------------

class SeafileTest : public ::testing::Test {
 protected:
  SeafileTest()
      : sim_(clock_, CostProfile::pc(), CostProfile::pc()) {
    sim_.fs().mkdir("/sync");
  }
  VirtualClock clock_;
  SeafileSim sim_;
};

TEST_F(SeafileTest, SmallEditUploadsWholeChunk) {
  Rng rng(7);
  Bytes data = rng.bytes(8 << 20);
  sim_.fs().write_file("/sync/db", data);
  pump(sim_, clock_, seconds(3));
  const std::uint64_t baseline = sim_.traffic().up_bytes();

  data[4'000'000] ^= 1;  // 1 byte changed
  sim_.fs().write_file("/sync/db", data);
  pump(sim_, clock_, seconds(3));

  const std::uint64_t used = sim_.traffic().up_bytes() - baseline;
  // The 1 MB-average chunk containing the edit travels whole.
  EXPECT_GT(used, 128u * 1024);
  EXPECT_LT(used, 5u << 20);
}

TEST_F(SeafileTest, ChunkDedupAcrossFiles) {
  Rng rng(8);
  const Bytes data = rng.bytes(4 << 20);
  sim_.fs().write_file("/sync/a", data);
  pump(sim_, clock_, seconds(3));
  const std::uint64_t baseline = sim_.traffic().up_bytes();
  sim_.fs().write_file("/sync/b", data);
  pump(sim_, clock_, seconds(3));
  EXPECT_LT(sim_.traffic().up_bytes() - baseline, 2'000u);
}

TEST_F(SeafileTest, ServerCpuComesFromReceivedBytes) {
  Rng rng(9);
  sim_.fs().write_file("/sync/f", rng.bytes(4 << 20));
  pump(sim_, clock_, seconds(3));
  EXPECT_GT(sim_.server_cpu_ticks(), 0u);
  EXPECT_GT(sim_.client_cpu_ticks(), 0u);
}

// ---------------------------------------------------------------------------
// NfsSim
// ---------------------------------------------------------------------------

class NfsTest : public ::testing::Test {
 protected:
  NfsTest() : sim_(clock_, CostProfile::pc()) { sim_.fs().mkdir("/sync"); }
  VirtualClock clock_;
  NfsSim sim_;
};

TEST_F(NfsTest, WritesAreMirroredToServer) {
  Rng rng(10);
  const Bytes data = rng.bytes(100'000);
  sim_.fs().write_file("/sync/f", data);
  EXPECT_EQ(*sim_.server_content("/sync/f"), data);
  EXPECT_GT(sim_.traffic().up_bytes(), data.size());
}

TEST_F(NfsTest, EveryWriteUploadsItsBytes) {
  Result<FileHandle> handle = sim_.fs().create("/sync/log");
  ASSERT_TRUE(handle.is_ok());
  const std::uint64_t before = sim_.traffic().up_bytes();
  Rng rng(11);
  for (int i = 0; i < 10; ++i) {
    sim_.fs().write(*handle, i * 4096, rng.bytes(4096));
  }
  sim_.fs().close(*handle);
  EXPECT_GE(sim_.traffic().up_bytes() - before, 10u * 4096);
}

TEST_F(NfsTest, RenameInvalidatesCacheForcingRefetch) {
  Rng rng(12);
  const Bytes data = rng.bytes(500'000);
  sim_.fs().write_file("/sync/t1", data);
  const std::uint64_t down_before = sim_.traffic().down_bytes();

  ASSERT_TRUE(sim_.fs().rename("/sync/t1", "/sync/f").is_ok());
  // Reading the renamed file pulls the whole content back (stale cache).
  Result<Bytes> content = sim_.fs().read_file("/sync/f");
  ASSERT_TRUE(content.is_ok());
  EXPECT_EQ(*content, data);
  EXPECT_GE(sim_.traffic().down_bytes() - down_before, data.size());
}

TEST_F(NfsTest, NonAlignedWriteTriggersFetchBeforeWrite) {
  Rng rng(13);
  // Populate server-side state, then invalidate the cache via rename so
  // the file's pages are no longer cached.
  sim_.fs().write_file("/sync/db0", rng.bytes(1 << 20));
  ASSERT_TRUE(sim_.fs().rename("/sync/db0", "/sync/db").is_ok());
  const std::uint64_t down_before = sim_.traffic().down_bytes();

  Result<FileHandle> handle = sim_.fs().open("/sync/db");
  ASSERT_TRUE(handle.is_ok());
  sim_.fs().write(*handle, 100, rng.bytes(24));  // sub-page, uncached
  sim_.fs().close(*handle);

  // The containing 4 KB page was fetched first.
  EXPECT_GE(sim_.traffic().down_bytes() - down_before, 4096u);
}

TEST_F(NfsTest, AlignedWriteAvoidsFetch) {
  Rng rng(14);
  sim_.fs().write_file("/sync/db0", rng.bytes(1 << 20));
  ASSERT_TRUE(sim_.fs().rename("/sync/db0", "/sync/db").is_ok());
  const std::uint64_t down_before = sim_.traffic().down_bytes();

  Result<FileHandle> handle = sim_.fs().open("/sync/db");
  ASSERT_TRUE(handle.is_ok());
  sim_.fs().write(*handle, 8192, rng.bytes(4096));  // page-aligned
  sim_.fs().close(*handle);

  // Only RPC headers travel down, no page content.
  EXPECT_LT(sim_.traffic().down_bytes() - down_before, 1'000u);
}

TEST_F(NfsTest, ServerCpuTracksBytesMoved) {
  Rng rng(15);
  sim_.fs().write_file("/sync/big", rng.bytes(32 << 20));
  EXPECT_GT(sim_.server_cpu_ticks(), 0u);
}

}  // namespace
}  // namespace dcfs
