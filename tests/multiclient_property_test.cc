// Multi-client property test (§III-D): two clients under randomized
// workloads against one cloud.  After a quiet period:
//   - both clients' local trees and the cloud agree on every file that was
//     written by exactly one client (forwarding worked);
//   - files both clients raced on converge to SOME consistent value
//     (first-write-wins), with the loser's data preserved in a conflict
//     copy — never silently dropped.
#include <gtest/gtest.h>

#include <map>

#include "core/client.h"
#include "common/rng.h"
#include "server/cloud_server.h"
#include "vfs/intercept.h"
#include "vfs/memfs.h"
#include "vfs/path.h"

namespace dcfs {
namespace {

struct Device {
  Device(std::uint32_t id, const Clock& clock, CloudServer& server)
      : local(clock),
        transport(NetProfile::pc_wan()),
        client(local, transport, clock, CostProfile::pc(), config_for(id)),
        fs(local, client) {
    server.attach(id, transport);
    fs.mkdir("/sync");
  }

  static ClientConfig config_for(std::uint32_t id) {
    ClientConfig config;
    config.client_id = id;
    return config;
  }

  MemFs local;
  Transport transport;
  DeltaCfsClient client;
  InterceptingFs fs;
};

class MultiClientPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void settle(VirtualClock& clock, CloudServer& server, Device& a, Device& b,
              Duration duration) {
    for (Duration t = 0; t < duration; t += milliseconds(200)) {
      clock.advance(milliseconds(200));
      a.client.tick(clock.now());
      b.client.tick(clock.now());
      server.pump();
      a.client.tick(clock.now());
      b.client.tick(clock.now());
    }
  }
};

TEST_P(MultiClientPropertyTest, DisjointWritersConvergeEverywhere) {
  VirtualClock clock;
  CloudServer server(CostProfile::pc());
  Device a(1, clock, server);
  Device b(2, clock, server);
  settle(clock, server, a, b, seconds(8));
  Rng rng(GetParam());

  // Each client owns a disjoint set of files; ops interleave in time.
  std::map<std::string, Bytes> expected;
  for (int round = 0; round < 25; ++round) {
    Device& writer = rng.next_below(2) == 0 ? a : b;
    const std::string prefix = (&writer == &a) ? "/sync/a" : "/sync/b";
    const std::string path = prefix + std::to_string(rng.next_below(4));
    const Bytes content = rng.bytes(1 + rng.next_below(20'000));
    ASSERT_TRUE(writer.fs.write_file(path, content).is_ok());
    expected[path] = content;
    if (rng.next_below(3) == 0) {
      settle(clock, server, a, b, milliseconds(200 * (1 + rng.next_below(20))));
    }
  }
  settle(clock, server, a, b, seconds(15));
  a.client.flush(clock.now());
  b.client.flush(clock.now());
  server.pump();
  a.client.tick(clock.now());
  b.client.tick(clock.now());
  settle(clock, server, a, b, seconds(2));

  for (const auto& [path, content] : expected) {
    Result<Bytes> cloud = server.fetch(path);
    ASSERT_TRUE(cloud.is_ok()) << path << " seed " << GetParam();
    EXPECT_EQ(*cloud, content) << path;
    // Both devices converged to the cloud's view.
    Result<Bytes> at_a = a.local.read_file(path);
    Result<Bytes> at_b = b.local.read_file(path);
    ASSERT_TRUE(at_a.is_ok()) << path;
    ASSERT_TRUE(at_b.is_ok()) << path;
    EXPECT_EQ(*at_a, content) << path;
    EXPECT_EQ(*at_b, content) << path;
  }
  EXPECT_EQ(a.client.conflicts_acked() + b.client.conflicts_acked(), 0u);
  EXPECT_EQ(a.client.errors_acked() + b.client.errors_acked(), 0u);
}

TEST_P(MultiClientPropertyTest, RacingWritersNeverLoseData) {
  VirtualClock clock;
  CloudServer server(CostProfile::pc());
  Device a(1, clock, server);
  Device b(2, clock, server);
  Rng rng(GetParam() + 500);

  // Seed a shared file through A.
  const Bytes original = rng.bytes(10'000);
  ASSERT_TRUE(a.fs.write_file("/sync/shared", original).is_ok());
  settle(clock, server, a, b, seconds(8));
  ASSERT_TRUE(b.local.exists("/sync/shared"));

  // Race: both edit before either syncs.
  Bytes edit_a = *a.local.read_file("/sync/shared");
  Bytes edit_b = *b.local.read_file("/sync/shared");
  edit_a[10] = 'A';
  edit_b[10] = 'B';
  {
    Result<FileHandle> ha = a.fs.open("/sync/shared");
    a.fs.write(*ha, 10, ByteSpan{edit_a.data() + 10, 1});
    a.fs.close(*ha);
    Result<FileHandle> hb = b.fs.open("/sync/shared");
    b.fs.write(*hb, 10, ByteSpan{edit_b.data() + 10, 1});
    b.fs.close(*hb);
  }
  settle(clock, server, a, b, seconds(15));
  a.client.flush(clock.now());
  b.client.flush(clock.now());
  server.pump();
  a.client.tick(clock.now());
  b.client.tick(clock.now());

  // The main file holds exactly one of the edits...
  Result<Bytes> winner = server.fetch("/sync/shared");
  ASSERT_TRUE(winner.is_ok());
  EXPECT_TRUE(*winner == edit_a || *winner == edit_b);

  // ...and the losing edit survives in a conflict copy.
  const Bytes& loser = (*winner == edit_a) ? edit_b : edit_a;
  bool loser_found = false;
  for (const std::string& path : server.conflict_paths()) {
    Result<Bytes> copy = server.fetch(path);
    if (copy.is_ok() && *copy == loser) loser_found = true;
  }
  EXPECT_TRUE(loser_found) << "losing edit dropped (seed " << GetParam()
                           << ")";
  EXPECT_EQ(a.client.conflicts_acked() + b.client.conflicts_acked(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MultiClientPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace dcfs
