#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "baselines/deltacfs_system.h"
#include "common/rng.h"

namespace dcfs {
namespace {

/// Test fixture wiring the full DeltaCFS stack under a virtual clock.
class ClientTest : public ::testing::Test {
 protected:
  ClientTest() { system_.fs().mkdir("/sync"); }

  /// Advances virtual time in small steps, ticking the system.
  void run_for(Duration duration) {
    for (Duration t = 0; t < duration; t += milliseconds(200)) {
      clock_.advance(milliseconds(200));
      system_.tick(clock_.now());
    }
  }

  void drain() {
    run_for(seconds(10));
    system_.finish(clock_.now());
  }

  void write_file(const std::string& path, ByteSpan data) {
    ASSERT_TRUE(system_.fs().write_file(path, data).is_ok());
  }

  Bytes cloud(const std::string& path) {
    Result<Bytes> content = system_.server().fetch(path);
    EXPECT_TRUE(content.is_ok()) << path;
    return content.is_ok() ? *content : Bytes{};
  }

  VirtualClock clock_;
  DeltaCfsSystem system_{clock_, CostProfile::pc(), NetProfile::pc_wan()};
};

TEST_F(ClientTest, SimpleCreateWriteSyncs) {
  write_file("/sync/f", to_bytes("hello cloud"));
  drain();
  EXPECT_EQ(as_text(cloud("/sync/f")), "hello cloud");
}

TEST_F(ClientTest, AppendsSyncIncrementally) {
  Rng rng(1);
  Result<FileHandle> handle = system_.fs().create("/sync/log");
  ASSERT_TRUE(handle.is_ok());
  std::uint64_t size = 0;
  Bytes expected;
  for (int i = 0; i < 5; ++i) {
    const Bytes chunk = rng.text(10'000);
    system_.fs().write(*handle, size, chunk);
    size += chunk.size();
    append(expected, chunk);
    run_for(seconds(5));  // node ages past the upload delay between writes
  }
  system_.fs().close(*handle);
  drain();
  EXPECT_EQ(cloud("/sync/log"), expected);
  // Several incremental uploads happened, not one big one.
  EXPECT_GE(system_.client().records_uploaded(), 4u);
}

TEST_F(ClientTest, OutOfScopePathsAreNotSynced) {
  write_file("/private", to_bytes("secret"));
  drain();
  EXPECT_FALSE(system_.server().fetch("/private").is_ok());
}

TEST_F(ClientTest, WordTransactionalUpdateUsesDelta) {
  Rng rng(2);
  Bytes content = rng.bytes(200'000);
  write_file("/sync/doc", content);
  drain();
  const std::uint64_t traffic_before = system_.traffic().up_bytes();

  // Fig. 3 Word flow: rename f t0; create-write t1; rename t1 f; delete t0.
  content.insert(content.begin() + 100'000, 42);  // small edit, shifts tail
  ASSERT_TRUE(system_.fs().rename("/sync/doc", "/sync/doc.t0").is_ok());
  Result<FileHandle> handle = system_.fs().create("/sync/doc.t1");
  ASSERT_TRUE(handle.is_ok());
  system_.fs().write(*handle, 0, content);
  system_.fs().close(*handle);
  ASSERT_TRUE(system_.fs().rename("/sync/doc.t1", "/sync/doc").is_ok());
  ASSERT_TRUE(system_.fs().unlink("/sync/doc.t0").is_ok());
  drain();

  EXPECT_EQ(cloud("/sync/doc"), content);
  EXPECT_FALSE(system_.server().fetch("/sync/doc.t0").is_ok());
  EXPECT_FALSE(system_.server().fetch("/sync/doc.t1").is_ok());
  EXPECT_EQ(system_.client().deltas_triggered(), 1u);

  // The full 200 KB rewrite crossed the wire as a small delta.
  const std::uint64_t used = system_.traffic().up_bytes() - traffic_before;
  EXPECT_LT(used, 20'000u);
  EXPECT_EQ(system_.client().conflicts_acked(), 0u);
}

TEST_F(ClientTest, GeditLinkRenameFlowUsesDelta) {
  Rng rng(3);
  Bytes content = rng.bytes(100'000);
  write_file("/sync/notes", content);
  drain();
  const std::uint64_t traffic_before = system_.traffic().up_bytes();

  // Fig. 3 gedit flow: create-write tmp; link f f~; rename tmp f.
  content[50'000] ^= 0x55;
  Result<FileHandle> handle = system_.fs().create("/sync/.tmp123");
  ASSERT_TRUE(handle.is_ok());
  system_.fs().write(*handle, 0, content);
  system_.fs().close(*handle);
  ASSERT_TRUE(system_.fs().link("/sync/notes", "/sync/notes~").is_ok());
  ASSERT_TRUE(system_.fs().rename("/sync/.tmp123", "/sync/notes").is_ok());
  drain();

  EXPECT_EQ(cloud("/sync/notes"), content);
  EXPECT_EQ(system_.client().deltas_triggered(), 1u);
  const std::uint64_t used = system_.traffic().up_bytes() - traffic_before;
  EXPECT_LT(used, 110'000u);  // backup link costs nothing contentwise
  EXPECT_EQ(system_.client().conflicts_acked(), 0u);
}

TEST_F(ClientTest, DeleteThenRecreateUsesPreservedCopy) {
  Rng rng(4);
  Bytes content = rng.bytes(80'000);
  write_file("/sync/cfg", content);
  drain();
  const std::uint64_t traffic_before = system_.traffic().up_bytes();

  // The "bad update" pattern: delete the file, then rewrite it slightly
  // changed.  The unlink interceptor preserves the old version in tmp/.
  ASSERT_TRUE(system_.fs().unlink("/sync/cfg").is_ok());
  content[7] ^= 0x01;
  Result<FileHandle> handle = system_.fs().create("/sync/cfg");
  ASSERT_TRUE(handle.is_ok());
  system_.fs().write(*handle, 0, content);
  system_.fs().close(*handle);
  drain();

  EXPECT_EQ(cloud("/sync/cfg"), content);
  EXPECT_EQ(system_.client().deltas_triggered(), 1u);
  EXPECT_LT(system_.traffic().up_bytes() - traffic_before, 10'000u);
  EXPECT_EQ(system_.client().conflicts_acked(), 0u);
}

TEST_F(ClientTest, PreservedUnlinkExpiresAndReallyDeletes) {
  write_file("/sync/gone", to_bytes("bye"));
  drain();
  ASSERT_TRUE(system_.fs().unlink("/sync/gone").is_ok());

  // The preserved copy sits under the client tmp dir until the relation
  // times out (2 s), then it is really removed from the local FS.
  const auto before = system_.local().list_dir("/.dcfs_tmp");
  ASSERT_TRUE(before.is_ok());
  EXPECT_EQ(before->size(), 1u);

  run_for(seconds(4));
  const auto after = system_.local().list_dir("/.dcfs_tmp");
  ASSERT_TRUE(after.is_ok());
  EXPECT_TRUE(after->empty());

  drain();
  EXPECT_FALSE(system_.server().fetch("/sync/gone").is_ok());
}

TEST_F(ClientTest, InPlaceSmallWritesShipAsWrites) {
  Rng rng(5);
  Bytes content = rng.bytes(500'000);
  write_file("/sync/db", content);
  drain();
  const std::uint64_t traffic_before = system_.traffic().up_bytes();

  // Small in-place update: NFS-like RPC, no delta machinery.
  Result<FileHandle> handle = system_.fs().open("/sync/db");
  const Bytes patch = rng.bytes(1'000);
  system_.fs().write(*handle, 123'456, patch);
  system_.fs().close(*handle);
  std::copy(patch.begin(), patch.end(), content.begin() + 123'456);
  drain();

  EXPECT_EQ(cloud("/sync/db"), content);
  EXPECT_EQ(system_.client().deltas_triggered(), 0u);
  const std::uint64_t used = system_.traffic().up_bytes() - traffic_before;
  EXPECT_LT(used, 3'000u);  // ~ the patch plus framing
}

TEST_F(ClientTest, LargeInPlaceRewriteCompressesViaLocalDelta) {
  Rng rng(6);
  Bytes content = rng.bytes(100'000);
  write_file("/sync/big", content);
  drain();
  const std::uint64_t traffic_before = system_.traffic().up_bytes();

  // Rewrite >50% of the file with content that is mostly unchanged: the
  // undo log lets the client reconstruct the old version and delta it.
  Result<FileHandle> handle = system_.fs().open("/sync/big");
  Bytes rewrite(content.begin(), content.begin() + 80'000);
  rewrite[79'999] ^= 0xFF;  // only one byte actually differs
  system_.fs().write(*handle, 0, rewrite);
  system_.fs().close(*handle);
  std::copy(rewrite.begin(), rewrite.end(), content.begin());
  drain();

  EXPECT_EQ(cloud("/sync/big"), content);
  EXPECT_EQ(system_.client().deltas_triggered(), 1u);
  EXPECT_LT(system_.traffic().up_bytes() - traffic_before, 20'000u);
}

TEST_F(ClientTest, TruncateSyncs) {
  write_file("/sync/t", to_bytes("0123456789"));
  drain();
  ASSERT_TRUE(system_.fs().truncate("/sync/t", 4).is_ok());
  drain();
  EXPECT_EQ(as_text(cloud("/sync/t")), "0123");
}

TEST_F(ClientTest, MkdirAndNestedFilesSync) {
  ASSERT_TRUE(system_.fs().mkdir("/sync/dir").is_ok());
  write_file("/sync/dir/f", to_bytes("nested"));
  drain();
  EXPECT_TRUE(system_.server().has_dir("/sync/dir"));
  EXPECT_EQ(as_text(cloud("/sync/dir/f")), "nested");
}

TEST_F(ClientTest, VersionsAdvancePerUpdate) {
  write_file("/sync/v", to_bytes("a"));
  drain();
  const auto v1 = system_.server().version("/sync/v");
  ASSERT_TRUE(v1.has_value());

  Result<FileHandle> handle = system_.fs().open("/sync/v");
  system_.fs().write(*handle, 1, to_bytes("b"));
  system_.fs().close(*handle);
  drain();
  const auto v2 = system_.server().version("/sync/v");
  ASSERT_TRUE(v2.has_value());
  EXPECT_NE(*v1, *v2);
  EXPECT_EQ(v2->client_id, 1u);
  EXPECT_GT(v2->counter, v1->counter);
}

TEST(ClientBundleTest, BundlingCutsFramesWithoutChangingState) {
  // Two identical chatty workloads; one client bundles small records.
  // The bundled run must ship strictly fewer upstream frames and leave
  // the cloud in the identical state.
  auto run = [](bool bundle) {
    VirtualClock clock;
    ClientConfig config;
    config.bundle_uploads = bundle;
    DeltaCfsSystem system(clock, CostProfile::pc(), NetProfile::pc_wan(),
                          config);
    system.fs().mkdir("/sync");
    for (int i = 0; i < 20; ++i) {
      const std::string path = "/sync/small" + std::to_string(i);
      EXPECT_TRUE(
          system.fs()
              .write_file(path, to_bytes("note " + std::to_string(i)))
              .is_ok());
    }
    for (Duration t = 0; t < seconds(15); t += milliseconds(200)) {
      clock.advance(milliseconds(200));
      system.tick(clock.now());
    }
    system.finish(clock.now());
    std::string state;
    for (const std::string& path : system.server().paths()) {
      Result<Bytes> content = system.server().fetch(path);
      state += path + "=" + std::string(as_text(*content)) + ";";
    }
    return std::tuple(state, system.traffic().up_messages(),
                      system.client().bundle_frames_sent(),
                      system.client().bundle_records_sent());
  };

  const auto [plain_state, plain_frames, plain_bundles, plain_members] =
      run(false);
  const auto [bundled_state, bundled_frames, bundled_bundles,
              bundled_members] = run(true);
  EXPECT_EQ(bundled_state, plain_state);
  EXPECT_LT(bundled_frames, plain_frames);
  EXPECT_EQ(plain_bundles, 0u);
  EXPECT_GE(bundled_bundles, 1u);
  // Every bundle carried at least two members (singletons go out plain).
  EXPECT_GE(bundled_members, 2 * bundled_bundles);
}

TEST_F(ClientTest, CausalOrderPreservedDespiteDeletion) {
  // §III-E example: create a, create b, create c, delete a — the cloud must
  // never hold b without having seen a first (FIFO + tombstones).
  write_file("/sync/a", to_bytes("A"));
  write_file("/sync/b", to_bytes("B"));
  write_file("/sync/c", to_bytes("C"));
  ASSERT_TRUE(system_.fs().unlink("/sync/a").is_ok());
  drain();

  const auto& order = system_.server().arrival_order();
  const auto pos = [&](const std::string& p) {
    return std::find(order.begin(), order.end(), p) - order.begin();
  };
  EXPECT_LT(pos("/sync/a"), pos("/sync/b"));
  EXPECT_LT(pos("/sync/b"), pos("/sync/c"));
  EXPECT_FALSE(system_.server().fetch("/sync/a").is_ok());
}

}  // namespace
}  // namespace dcfs
