// The declared lock order (src/chk/lock_order.h) vs. reality:
//
//   * the declaration itself must be acyclic and must match the
//     machine-readable manifest (tools/lock_order.json) token for token —
//     editing one without the other fails here;
//   * a real parallel client/server workload (delta threads, sharded
//     apply, wire compression, kvstore auto-compaction, tracing) must run
//     with zero lockdep violations, and every cross-class nesting the
//     runtime graph observed must be covered by the declared order;
//   * the observed DOT is exported to lockdep_runtime.dot so CI can run
//     tools/lockdep_check.py — the out-of-process twin of the in-process
//     assertions — over the same graph.
//
// With DCFS_CHK=OFF the runtime graph is empty and the workload half is
// vacuous; the manifest/acyclicity half still runs.
#include "chk/lock_order.h"

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>

#include <gtest/gtest.h>

#include "baselines/deltacfs_system.h"
#include "chk/lockdep.h"
#include "common/rng.h"
#include "kvstore/kvstore.h"
#include "obs/obs.h"
#include "par/worker_pool.h"

namespace dcfs {
namespace {

std::string read_file_or_empty(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Extracts the edge set from a lockdep DOT export:  "a" -> "b" [...].
std::set<std::pair<std::string, std::string>> dot_edges(
    const std::string& dot) {
  std::set<std::pair<std::string, std::string>> edges;
  std::istringstream lines(dot);
  std::string line;
  while (std::getline(lines, line)) {
    const std::size_t arrow = line.find("\" -> \"");
    if (arrow == std::string::npos) continue;
    const std::size_t from_begin = line.find('"');
    if (from_begin == std::string::npos || from_begin >= arrow) continue;
    const std::string from = line.substr(from_begin + 1, arrow - from_begin - 1);
    const std::size_t to_begin = arrow + 6;
    const std::size_t to_end = line.find('"', to_begin);
    if (to_end == std::string::npos) continue;
    edges.emplace(from, line.substr(to_begin, to_end - to_begin));
  }
  return edges;
}

TEST(LockOrderTest, DeclaredOrderIsAcyclic) {
  EXPECT_TRUE(chk::lock_order_acyclic());
}

TEST(LockOrderTest, AllowsFollowsTransitiveClosure) {
  // Direct edge.
  EXPECT_TRUE(chk::lock_order_allows("par.pool", "par.batch"));
  // Two hops: pool -> batch -> batch_error.
  EXPECT_TRUE(chk::lock_order_allows("par.pool", "par.batch_error"));
  // Three hops into the obs leaves.
  EXPECT_TRUE(chk::lock_order_allows("par.pool", "obs.logger"));
  // Inversions and unrelated pairs are rejected.
  EXPECT_FALSE(chk::lock_order_allows("par.batch", "par.pool"));
  EXPECT_FALSE(chk::lock_order_allows("obs.logger", "kvstore.table"));
  EXPECT_FALSE(chk::lock_order_allows("kvstore.table", "server.block_store"));
  // Unknown classes are never allowed — new mutexes must be declared.
  EXPECT_FALSE(chk::lock_order_allows("nosuch.class", "obs.logger"));
  // Test fixtures are exempt (chk_test builds deliberate cycles).
  EXPECT_TRUE(chk::lock_order_allows("test.inv_a", "test.inv_b"));
  EXPECT_TRUE(chk::lock_order_allows("test.inv_b", "test.inv_a"));
}

TEST(LockOrderTest, ManifestMatchesDeclaration) {
#if !defined(DCFS_SOURCE_DIR)
  GTEST_SKIP() << "DCFS_SOURCE_DIR not defined";
#else
  const std::string path = std::string(DCFS_SOURCE_DIR) +
                           "/tools/lock_order.json";
  const std::string on_disk = read_file_or_empty(path);
  ASSERT_FALSE(on_disk.empty()) << "missing " << path;
  EXPECT_EQ(on_disk, chk::lock_order_json())
      << "tools/lock_order.json is out of sync with src/chk/lock_order.h — "
         "regenerate it from lock_order_json() (the expected content is the "
         "right-hand side above)";
#endif
}

// Drives every lock-owning subsystem at once — parallel delta kernels,
// sharded server apply, wire compression over the shared BufferPool,
// tracing + metrics + logging, and a kvstore with auto-compaction under a
// worker pool — then checks the lockdep graph this produced against the
// declared order and exports it for tools/lockdep_check.py.
TEST(LockOrderTest, WorkloadObeysDeclaredOrderAndExportsDot) {
#if defined(DCFS_CHK_ENABLED)
  const std::uint64_t violations_before = chk::violation_count();
#endif
  {
    obs::Obs obs;
    VirtualClock clock;
    obs.tracer.enable(clock);
    obs.tracer.set_process(1, "lock_order_test");

    ClientConfig config;
    config.client_id = 1;
    config.delta_threads = 2;
    config.wire_compression = true;
    config.bundle_uploads = true;
    ServerConfig server_config;
    server_config.apply_shards = 2;
    server_config.wire_compression = true;

    DeltaCfsSystem system(clock, CostProfile::pc(), NetProfile::pc_wan(),
                          config, CostProfile::pc(), &obs, server_config);
    system.fs().mkdir("/sync");

    Rng rng(7);
    Bytes content = rng.bytes(300'000);
    system.fs().write_file("/sync/doc", content);
    for (int round = 0; round < 4; ++round) {
      for (Duration t = 0; t < seconds(12); t += milliseconds(200)) {
        clock.advance(milliseconds(200));
        system.tick(clock.now());
      }
      // Transactional rewrite: exercises signature cache, delta kernels on
      // the pool, sharded apply and block-store history on the server.
      content[static_cast<std::size_t>(rng.next_u32()) % content.size()] ^= 1;
      system.fs().rename("/sync/doc", "/sync/doc.bak");
      system.fs().write_file("/sync/doc.tmp", content);
      system.fs().rename("/sync/doc.tmp", "/sync/doc");
      system.fs().unlink("/sync/doc.bak");
    }
    system.finish(clock.now());
    obs.tracer.disable();

    // A kvstore compacting under concurrent pool traffic: the self-deadlock
    // class PR 5 caught ran kvstore.table recursively; here compaction and
    // puts interleave with pool-lane metrics, populating kvstore edges.
    auto storage = std::make_shared<MemoryWalStorage>();
    KvStore kv(storage);
    kv.set_auto_compaction(1.5, 1024);
    par::WorkerPool pool(3, &obs);
    pool.parallel_for(64, 4, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        const std::string key = "key" + std::to_string(i % 8);
        const Bytes value = Bytes(200, static_cast<std::uint8_t>(i));
        kv.put(key, value);
        (void)kv.get(key);
      }
    });
    EXPECT_EQ(kv.size(), 8u);
  }

#if defined(DCFS_CHK_ENABLED)
  EXPECT_EQ(chk::violation_count(), violations_before)
      << "the workload tripped runtime lockdep";
#endif

  const std::string dot = chk::lockdep_dot();
  for (const auto& [from, to] : dot_edges(dot)) {
    EXPECT_TRUE(chk::lock_order_allows(from, to))
        << "observed nesting " << from << " -> " << to
        << " is not covered by the declared order (src/chk/lock_order.h)";
  }

  // Exported for CI: python3 tools/lockdep_check.py lockdep_runtime.dot
  std::ofstream out("lockdep_runtime.dot", std::ios::binary);
  ASSERT_TRUE(out.good());
  out << dot;
}

}  // namespace
}  // namespace dcfs
