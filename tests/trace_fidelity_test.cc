// Trace fidelity: the workload generators must reproduce the operation
// patterns and the published statistics of §IV-A / Fig. 3 — and the
// tracer's cross-wire export must stay structurally valid (balanced B/E,
// bindable flow events) when a real sync pipeline runs under it.
#include <gtest/gtest.h>

#include "baselines/deltacfs_system.h"
#include "common/rng.h"
#include "obs/critpath.h"
#include "obs/obs.h"
#include "trace/workloads.h"
#include "vfs/intercept.h"
#include "vfs/memfs.h"

namespace dcfs {
namespace {

/// Records the raw op stream a workload produces (what LibFuse would see).
struct OpRecorder final : OpSink {
  std::vector<std::string> ops;

  void note_create(std::string_view path) override {
    ops.push_back("create " + std::string(path));
  }
  void note_write(std::string_view path, std::uint64_t offset, ByteSpan data,
                  ByteSpan, std::uint64_t) override {
    ops.push_back("write " + std::string(path) + " @" +
                  std::to_string(offset) + " +" +
                  std::to_string(data.size()));
  }
  void note_truncate(std::string_view path, std::uint64_t new_size,
                     std::uint64_t, ByteSpan) override {
    ops.push_back("truncate " + std::string(path) + " " +
                  std::to_string(new_size));
  }
  void note_rename(std::string_view from, std::string_view to,
                   bool) override {
    ops.push_back("rename " + std::string(from) + " " + std::string(to));
  }
  void note_unlink(std::string_view path) override {
    ops.push_back("unlink " + std::string(path));
  }

  [[nodiscard]] std::size_t count(const std::string& prefix) const {
    std::size_t n = 0;
    for (const std::string& op : ops) {
      if (op.rfind(prefix, 0) == 0) ++n;
    }
    return n;
  }
};

struct Harness {
  Harness() : fs(clock), recorder(), intercepted(fs, recorder) {
    fs.mkdir("/sync");
  }
  VirtualClock clock;
  MemFs fs;
  OpRecorder recorder;
  InterceptingFs intercepted;

  void run(Workload& workload) {
    workload.setup(intercepted);
    recorder.ops.clear();  // measure only the trace body, like the benches
    while (workload.step(intercepted)) {
      clock.advance(seconds(1));
    }
  }
};

// ---------------------------------------------------------------------------

TEST(TraceFidelityTest, PaperParametersMatchSectionIVA) {
  // §IV-A: append = 40 ops of ~800 KB, final 32 MB.
  const AppendParams append = AppendParams::paper();
  EXPECT_EQ(append.appends, 40u);
  EXPECT_EQ(append.append_bytes, 800u * 1024);
  EXPECT_EQ(append.appends * append.append_bytes, 32'768'000u);
  EXPECT_EQ(append.interval, seconds(15));

  // random = 40 writes of 1010 bytes on a 20 MB file.
  const RandomWriteParams random = RandomWriteParams::paper();
  EXPECT_EQ(random.writes, 40u);
  EXPECT_EQ(random.write_bytes, 1010u);
  EXPECT_EQ(random.file_bytes, 20ull << 20);

  // Word = 61 saves, 12.1 -> 16.7 MB.
  const WordParams word = WordParams::paper();
  EXPECT_EQ(word.saves, 61u);
  EXPECT_NEAR(static_cast<double>(word.initial_bytes) / 1e6, 12.7, 0.7);
  EXPECT_NEAR(static_cast<double>(word.final_bytes) / 1e6, 17.5, 0.9);

  // WeChat = 373 updates, 131 -> 137 MB.
  const WeChatParams wechat = WeChatParams::paper();
  EXPECT_EQ(wechat.updates, 373u);
  EXPECT_EQ(wechat.initial_bytes, 131ull << 20);
  EXPECT_EQ(wechat.final_bytes, 137ull << 20);
}

TEST(TraceFidelityTest, WordTraceFollowsFig3Sequence) {
  Harness harness;
  WordParams params = WordParams::scaled();
  params.saves = 3;
  params.initial_bytes = 200'000;
  params.final_bytes = 230'000;
  WordWorkload workload(params);
  harness.run(workload);

  // Per save: rename f->backup, create temp, writes, rename temp->f,
  // unlink backup (Fig. 3, Microsoft Word row).
  EXPECT_EQ(harness.recorder.count("rename /sync/report.doc /sync/report"),
            3u);  // rename f -> backup
  EXPECT_EQ(harness.recorder.count("create /sync/report.doc.dft"), 3u);
  EXPECT_EQ(harness.recorder.count(
                "rename /sync/report.doc.dft /sync/report.doc"),
            3u);
  EXPECT_EQ(harness.recorder.count("unlink "), 3u);

  // The op ordering within the first save.
  std::vector<std::string> kinds;
  for (const std::string& op : harness.recorder.ops) {
    const std::string kind = op.substr(0, op.find(' '));
    if (kinds.empty() || kinds.back() != kind) kinds.push_back(kind);
    if (kinds.size() == 5) break;
  }
  EXPECT_EQ(kinds, (std::vector<std::string>{"rename", "create", "write",
                                             "rename", "unlink"}));
}

TEST(TraceFidelityTest, WeChatTraceFollowsFig3Sequence) {
  Harness harness;
  WeChatParams params = WeChatParams::scaled();
  params.updates = 4;
  params.initial_bytes = 1 << 20;
  params.final_bytes = (1 << 20) + 64 * 1024;
  WeChatWorkload workload(params);
  harness.run(workload);

  // Fig. 3, WeChat row: create-write journal, write db, truncate journal.
  // SQLite's TRUNCATE journal mode (which Fig. 3's "truncate f_journal 0"
  // implies) creates the journal once and truncates it on every commit.
  EXPECT_EQ(harness.recorder.count("create /sync/chat.db-journal"), 1u);
  EXPECT_EQ(harness.recorder.count("truncate /sync/chat.db-journal 0"), 4u);
  EXPECT_GT(harness.recorder.count("write /sync/chat.db "), 0u);

  // The db writes are small relative to the file (in-place updates); the
  // header write at offset 24 is sub-page (non-aligned).
  EXPECT_GT(harness.recorder.count("write /sync/chat.db @24 +"), 0u);
}

TEST(TraceFidelityTest, WordContentShiftsAcrossSaves) {
  // The generator must actually shift content (the dedup-defeating
  // property): after a save, a suffix of the old content appears at a
  // strictly greater offset.
  WordParams params = WordParams::scaled();
  params.initial_bytes = 100'000;
  params.final_bytes = 110'000;
  params.saves = 2;
  WordWorkload workload(params);

  VirtualClock clock;
  MemFs fs(clock);
  fs.mkdir("/sync");
  workload.setup(fs);
  const Bytes before = *fs.read_file(params.doc);
  workload.step(fs);
  const Bytes after = *fs.read_file(params.doc);

  EXPECT_GT(after.size(), before.size());
  // The last 1 KB of the old content exists in the new content, shifted.
  const Bytes tail(before.end() - 1024, before.end());
  const auto it = std::search(after.begin(), after.end(), tail.begin(),
                              tail.end());
  ASSERT_NE(it, after.end());
  EXPECT_GT(it - after.begin(),
            static_cast<std::ptrdiff_t>(before.size()) - 1024);
}

TEST(TraceFidelityTest, AppendGrowsMonotonically) {
  AppendParams params = AppendParams::scaled();
  params.appends = 5;
  AppendWorkload workload(params);
  VirtualClock clock;
  MemFs fs(clock);
  fs.mkdir("/sync");
  std::uint64_t last_size = 0;
  while (workload.step(fs)) {
    const std::uint64_t size = fs.stat(params.path)->size;
    EXPECT_GT(size, last_size);
    last_size = size;
  }
  EXPECT_EQ(fs.stat(params.path)->size,
            static_cast<std::uint64_t>(params.appends) * params.append_bytes);
}

// ---------------------------------------------------------------------------
// Cross-wire trace fidelity: a traced end-to-end sync must export a Chrome
// trace whose begin/end pairs balance on every track and whose flow events
// bind each server-side apply back to the originating client transaction —
// across the threading matrix (delta workers × apply shards).

TEST(TraceFidelityTest, TracedSyncValidatesAcrossThreadingMatrix) {
  for (const std::size_t delta_threads : {1u, 4u}) {
    for (const std::size_t apply_shards : {1u, 2u}) {
      SCOPED_TRACE("delta_threads=" + std::to_string(delta_threads) +
                   " apply_shards=" + std::to_string(apply_shards));
      VirtualClock clock;
      obs::Obs obs;
      obs.tracer.enable(clock);
      ClientConfig config;
      config.delta_threads = delta_threads;
      config.wire_compression = true;
      ServerConfig server_config;
      server_config.apply_shards = apply_shards;
      server_config.wire_compression = true;
      DeltaCfsSystem system(clock, CostProfile::pc(), NetProfile::pc_wan(),
                            config, CostProfile::pc(), &obs, server_config);
      system.fs().mkdir("/sync");

      // A small but multi-op workload: creates, overwrites, a rename — then
      // enough virtual time for every upload and ack to complete.
      for (int round = 0; round < 3; ++round) {
        for (int file = 0; file < 4; ++file) {
          const std::string path =
              "/sync/f" + std::to_string(file) + ".txt";
          const std::string body(1'500 + 700 * round + 31 * file,
                                 static_cast<char>('a' + round));
          ASSERT_TRUE(system.fs().write_file(path, to_bytes(body)).is_ok());
        }
        for (int i = 0; i < 15; ++i) {
          clock.advance(milliseconds(200));
          system.tick(clock.now());
        }
      }
      system.fs().rename("/sync/f0.txt", "/sync/g0.txt");
      system.finish(clock.now());
      for (int i = 0; i < 50; ++i) {
        clock.advance(milliseconds(200));
        system.tick(clock.now());
      }

      // Balanced B/E on every track, and every flow event bindable.
      EXPECT_TRUE(obs::well_nested(obs.tracer.events()));
      EXPECT_EQ(obs.tracer.open_spans(), 0u);
      const std::string json = obs.tracer.to_chrome_json();
      std::string error;
      std::size_t event_count = 0;
      EXPECT_TRUE(obs::validate_chrome_trace(json, &error, &event_count))
          << error;
      EXPECT_GT(event_count, 0u);

      // Every server apply reachable from its client txn: the critical-path
      // analyzer sees only complete four-endpoint transactions.
      obs::ParsedTrace parsed;
      ASSERT_TRUE(obs::parse_chrome_trace(json, parsed, &error)) << error;
      const obs::CritPathReport report = obs::analyze_critical_path(parsed);
      EXPECT_GT(report.overall.txns, 0u);
      EXPECT_EQ(report.overall.incomplete, 0u);

      // The stage decomposition partitions traced wall time: per-stage sums
      // must add up to the total (the CI acceptance bound is 5%).
      const std::uint64_t stage_sum = report.overall.transport.sum() +
                                      report.overall.apply.sum() +
                                      report.overall.ack.sum();
      const std::uint64_t total = report.overall.total.sum();
      EXPECT_LE(stage_sum, total + total / 20);
      EXPECT_GE(stage_sum + total / 20, total);

      // The stage ledger saw the same pipeline.
      EXPECT_GT(obs.stages.sketch(obs::Stage::apply).count(), 0u);
      EXPECT_GT(obs.stages.sketch(obs::Stage::queue_wait).count(), 0u);
    }
  }
}

}  // namespace
}  // namespace dcfs
