// dcfs::rt — timer wheel / reactor / driver unit behavior, plus the
// tentpole guarantee of the async runtime: with bounded-window chunk
// streaming on, server state, version histories, peer views and ack
// effects are byte-identical to the serial one-record pump at every
// thread count, shard count, and wire setting — while client memory for a
// streamed file stays O(window), and small interactive ops keep flowing
// around an in-flight bulk stream.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/client.h"
#include "net/transport.h"
#include "rt/credit.h"
#include "rt/driver.h"
#include "rt/reactor.h"
#include "rt/timer_wheel.h"
#include "server/cloud_server.h"
#include "vfs/intercept.h"
#include "vfs/memfs.h"

namespace dcfs {
namespace {

// ---------------------------------------------------------------------------
// TimerWheel
// ---------------------------------------------------------------------------

TEST(TimerWheel, FiresInDeadlineOrder) {
  rt::TimerWheel wheel;
  std::vector<int> fired;
  wheel.schedule(milliseconds(30), [&] { fired.push_back(3); });
  wheel.schedule(milliseconds(10), [&] { fired.push_back(1); });
  wheel.schedule(milliseconds(20), [&] { fired.push_back(2); });
  EXPECT_EQ(wheel.pending(), 3u);
  EXPECT_EQ(wheel.next_deadline(), std::optional<TimePoint>(milliseconds(10)));

  EXPECT_EQ(wheel.advance_until(milliseconds(25)), 2u);
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));
  EXPECT_EQ(wheel.next_deadline(), std::optional<TimePoint>(milliseconds(30)));

  EXPECT_EQ(wheel.advance_until(milliseconds(40)), 1u);
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(wheel.pending(), 0u);
  EXPECT_FALSE(wheel.next_deadline().has_value());
}

TEST(TimerWheel, SameInstantFiresInScheduleOrder) {
  rt::TimerWheel wheel;
  std::vector<int> fired;
  for (int i = 0; i < 5; ++i) {
    wheel.schedule(milliseconds(10), [&fired, i] { fired.push_back(i); });
  }
  wheel.advance_until(milliseconds(10));
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(TimerWheel, CancelDisarms) {
  rt::TimerWheel wheel;
  int fired = 0;
  const rt::TimerWheel::TimerId keep =
      wheel.schedule(milliseconds(10), [&] { ++fired; });
  const rt::TimerWheel::TimerId drop =
      wheel.schedule(milliseconds(10), [&] { fired += 100; });
  EXPECT_TRUE(wheel.cancel(drop));
  EXPECT_FALSE(wheel.cancel(drop));  // already gone
  wheel.advance_until(milliseconds(20));
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(wheel.cancel(keep));  // already fired
}

TEST(TimerWheel, PastDueDeadlineFiresOnNextAdvance) {
  rt::TimerWheel wheel;
  wheel.advance_until(milliseconds(100));
  int fired = 0;
  wheel.schedule(milliseconds(50), [&] { ++fired; });  // already overdue
  EXPECT_EQ(wheel.advance_until(milliseconds(110)), 1u);
  EXPECT_EQ(fired, 1);
}

TEST(TimerWheel, DeadlineBeyondOneRevolutionWaitsItsTurn) {
  // 8 slots x 1 ms: a 20 ms deadline shares a slot with earlier windows
  // but must not fire until its own revolution.
  rt::TimerWheel wheel(0, milliseconds(1), 8);
  int fired = 0;
  wheel.schedule(milliseconds(20), [&] { ++fired; });
  for (TimePoint t = milliseconds(1); t <= milliseconds(19);
       t += milliseconds(1)) {
    wheel.advance_until(t);
    EXPECT_EQ(fired, 0) << "at " << t;
  }
  wheel.advance_until(milliseconds(20));
  EXPECT_EQ(fired, 1);
}

TEST(TimerWheel, CallbackMayArmTimerDueInSameWindow) {
  rt::TimerWheel wheel;
  std::vector<int> fired;
  wheel.schedule(milliseconds(10), [&] {
    fired.push_back(1);
    wheel.schedule(milliseconds(15), [&] { fired.push_back(2); });
  });
  wheel.advance_until(milliseconds(20));
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));
}

// ---------------------------------------------------------------------------
// CreditGate / MemLedger
// ---------------------------------------------------------------------------

TEST(CreditGate, ConsumeGrantAndStalls) {
  rt::CreditGate gate(100);
  EXPECT_EQ(gate.consume(60), 60u);
  EXPECT_EQ(gate.consume(60), 40u);  // partial grant
  EXPECT_EQ(gate.consume(60), 0u);   // starved -> stall
  EXPECT_EQ(gate.stalls(), 1u);
  gate.grant(30);
  EXPECT_EQ(gate.available(), 30u);
  EXPECT_EQ(gate.consume(10), 10u);
  EXPECT_EQ(gate.stalls(), 1u);
  EXPECT_EQ(gate.consume(0), 0u);  // a zero-byte draw is not a stall
  EXPECT_EQ(gate.stalls(), 1u);
}

TEST(MemLedger, TracksHighwater) {
  rt::MemLedger ledger;
  ledger.acquire(100);
  ledger.acquire(50);
  ledger.release(120);
  ledger.acquire(10);
  EXPECT_EQ(ledger.current(), 40u);
  EXPECT_EQ(ledger.highwater(), 150u);
  ledger.release(1000);  // clamped, never underflows
  EXPECT_EQ(ledger.current(), 0u);
}

// ---------------------------------------------------------------------------
// Reactor QoS
// ---------------------------------------------------------------------------

TEST(Reactor, InteractivePreemptsBulk) {
  rt::Reactor reactor;
  const rt::ConnId conn = reactor.add_connection("cloud");
  std::vector<std::string> order;
  reactor.make_ready(conn, rt::TaskClass::bulk,
                     [&] { order.push_back("bulk0"); });
  reactor.make_ready(conn, rt::TaskClass::interactive,
                     [&] { order.push_back("meta0"); });
  reactor.make_ready(conn, rt::TaskClass::bulk,
                     [&] { order.push_back("bulk1"); });
  reactor.make_ready(conn, rt::TaskClass::interactive,
                     [&] { order.push_back("meta1"); });
  EXPECT_EQ(reactor.queue_depth(), 4u);
  EXPECT_EQ(reactor.poll(0), 4u);
  EXPECT_EQ(order, (std::vector<std::string>{"meta0", "meta1", "bulk0",
                                             "bulk1"}));
  EXPECT_EQ(reactor.queue_depth(), 0u);
}

TEST(Reactor, InteractiveWorkEnqueuedByBulkTaskRunsBeforeNextBulk) {
  rt::Reactor reactor;
  const rt::ConnId conn = reactor.add_connection("cloud");
  std::vector<std::string> order;
  reactor.make_ready(conn, rt::TaskClass::bulk, [&] {
    order.push_back("bulk0");
    reactor.make_ready(conn, rt::TaskClass::interactive,
                       [&] { order.push_back("meta-late"); });
  });
  reactor.make_ready(conn, rt::TaskClass::bulk,
                     [&] { order.push_back("bulk1"); });
  reactor.poll(0);
  EXPECT_EQ(order,
            (std::vector<std::string>{"bulk0", "meta-late", "bulk1"}));
}

TEST(Reactor, RoundRobinAcrossConnectionsWithinClass) {
  rt::Reactor reactor;
  const rt::ConnId a = reactor.add_connection("a");
  const rt::ConnId b = reactor.add_connection("b");
  std::vector<std::string> order;
  reactor.make_ready(a, rt::TaskClass::bulk, [&] { order.push_back("a0"); });
  reactor.make_ready(a, rt::TaskClass::bulk, [&] { order.push_back("a1"); });
  reactor.make_ready(b, rt::TaskClass::bulk, [&] { order.push_back("b0"); });
  reactor.make_ready(b, rt::TaskClass::bulk, [&] { order.push_back("b1"); });
  EXPECT_EQ(reactor.queue_depth(a), 2u);
  reactor.poll(0);
  EXPECT_EQ(order, (std::vector<std::string>{"a0", "b0", "a1", "b1"}));
  EXPECT_EQ(reactor.connection_name(b), "b");
  EXPECT_EQ(reactor.tasks_run(), 4u);
}

TEST(Reactor, PollAdvancesTimersFirst) {
  rt::Reactor reactor;
  const rt::ConnId conn = reactor.add_connection("cloud");
  std::vector<std::string> order;
  reactor.timers().schedule(milliseconds(5), [&] {
    order.push_back("timer");
    reactor.make_ready(conn, rt::TaskClass::bulk,
                       [&] { order.push_back("timer-armed"); });
  });
  reactor.make_ready(conn, rt::TaskClass::interactive,
                     [&] { order.push_back("meta"); });
  reactor.poll(milliseconds(10));
  EXPECT_EQ(order,
            (std::vector<std::string>{"timer", "meta", "timer-armed"}));
}

// ---------------------------------------------------------------------------
// Driver: serial sum vs reactor makespan
// ---------------------------------------------------------------------------

TEST(Driver, ReactorMakespanBeatsSerialSum) {
  auto make_step = [](VirtualClock& clock, int* left) {
    return [&clock, left] {
      clock.advance(milliseconds(10));
      return --*left > 0;
    };
  };
  Duration serial = 0;
  {
    VirtualClock ca, cb;
    int la = 5, lb = 5;
    rt::Driver driver;
    driver.add("a", ca, make_step(ca, &la));
    driver.add("b", cb, make_step(cb, &lb));
    serial = driver.run_serial();
  }
  Duration makespan = 0;
  {
    VirtualClock ca, cb;
    int la = 5, lb = 5;
    rt::Driver driver;
    driver.add("a", ca, make_step(ca, &la));
    driver.add("b", cb, make_step(cb, &lb));
    makespan = driver.run_reactor();
  }
  EXPECT_EQ(serial, milliseconds(100));  // 2 timelines x 50 ms, summed
  EXPECT_EQ(makespan, milliseconds(50));  // overlapped: the slowest one
}

// ---------------------------------------------------------------------------
// Streaming end-to-end equivalence matrix
// ---------------------------------------------------------------------------

struct StreamE2eConfig {
  bool streaming = false;
  std::uint32_t delta_threads = 1;
  std::size_t apply_shards = 1;
  bool wire = false;
};

struct E2eDigest {
  std::string state;  ///< server files, versions, histories, counters
  std::string peer;   ///< client B's forwarded view of the namespace
  std::uint64_t uploaded = 0;
  std::uint64_t forwards = 0;
  std::uint64_t errors = 0;
  std::uint64_t streams = 0;
};

/// Two clients share one cloud: client A imports two large files (streamed
/// when streaming is on), moves a third into scope, edits one in place and
/// sprays small metadata ops; client B contributes its own file.  The
/// observable outcome must not depend on the transfer mechanism.
E2eDigest run_stream_e2e(const StreamE2eConfig& cfg) {
  VirtualClock clock;
  MemFs local_a(clock);
  MemFs local_b(clock);
  Transport transport_a(NetProfile::pc_wan());
  Transport transport_b(NetProfile::pc_wan());

  ServerConfig server_config;
  server_config.apply_shards = cfg.apply_shards;
  server_config.wire_compression = cfg.wire;
  CloudServer server(CostProfile::pc(), server_config);

  auto client_config = [&cfg](std::uint32_t id) {
    ClientConfig config;
    config.client_id = id;
    config.delta_threads = cfg.delta_threads;
    config.wire_compression = cfg.wire;
    if (cfg.streaming) {
      config.stream_window_bytes = 16 * 1024;
      config.stream_chunk_bytes = 4 * 1024;
      config.stream_min_bytes = 48 * 1024;
    }
    return config;
  };
  DeltaCfsClient client_a(local_a, transport_a, clock, CostProfile::pc(),
                          client_config(1));
  DeltaCfsClient client_b(local_b, transport_b, clock, CostProfile::pc(),
                          client_config(2));
  InterceptingFs fs_a(local_a, client_a);
  InterceptingFs fs_b(local_b, client_b);
  server.attach(1, transport_a);
  server.attach(2, transport_b);

  auto settle = [&](Duration duration = seconds(12)) {
    for (Duration t = 0; t < duration; t += milliseconds(200)) {
      clock.advance(milliseconds(200));
      client_a.tick(clock.now());
      client_b.tick(clock.now());
      server.pump();
      client_a.tick(clock.now());
      client_b.tick(clock.now());
    }
    client_a.flush(clock.now());
    client_b.flush(clock.now());
    server.pump();
    client_a.tick(clock.now());
    client_b.tick(clock.now());
  };

  fs_a.mkdir("/sync");
  fs_b.mkdir("/sync");
  settle(seconds(4));

  Rng rng(99);

  // Two large files enter via import (full_file nodes — the streaming
  // path), one small one rides along.
  local_a.write_file("/sync/big.dat", rng.bytes(160 * 1024));
  local_a.write_file("/sync/album.bin", rng.bytes(96 * 1024));
  local_a.write_file("/sync/readme.txt", rng.text(2 * 1024));
  client_a.import_tree();
  fs_b.write_file("/sync/peer.log", rng.text(8 * 1024));
  settle();

  // A large file moves into scope (the other full_file producer).
  local_a.mkdir("/outside");
  local_a.write_file("/outside/moved.dat", rng.bytes(80 * 1024));
  fs_a.rename("/outside/moved.dat", "/sync/moved.dat");
  settle();

  // In-place patch of a streamed file (write node on a once-streamed
  // path), metadata churn, and a burst of small files.
  {
    Result<FileHandle> h = fs_a.open("/sync/big.dat");
    if (h) {
      fs_a.write(*h, 4096, rng.bytes(512));
      fs_a.close(*h);
    }
  }
  fs_a.rename("/sync/album.bin", "/sync/album2.bin");
  for (int i = 0; i < 5; ++i) {
    fs_a.write_file("/sync/small" + std::to_string(i),
                    rng.text(200 + 37 * static_cast<std::uint64_t>(i)));
  }
  fs_b.unlink("/sync/peer.log");
  settle(seconds(16));

  E2eDigest digest;
  std::ostringstream state;
  for (const std::string& path : server.paths()) {
    Result<Bytes> content = server.fetch(path);
    state << path << " #" << (content ? fnv1a(*content) : 0) << " @";
    if (auto v = server.version(path)) {
      state << v->client_id << ":" << v->counter;
    }
    state << " [";
    for (const proto::VersionId& v : server.history(path)) {
      Result<Bytes> old = server.fetch_version(path, v);
      state << v.client_id << ":" << v.counter << "#"
            << (old ? fnv1a(*old) : 0) << " ";
    }
    state << "]\n";
  }
  for (const std::string& path : server.conflict_paths()) {
    state << "conflict " << path << "\n";
  }
  state << "applied=" << server.records_applied()
        << " conflicts=" << server.conflicts_seen()
        << " txn=" << server.txn_groups_applied()
        << " rejected=" << server.rejections().size();
  digest.state = state.str();

  std::ostringstream peer;
  for (const std::string& path : server.paths()) {
    Result<Bytes> at_b = local_b.read_file(path);
    peer << path << " #" << (at_b ? fnv1a(*at_b) : 0) << "\n";
  }
  digest.peer = peer.str();

  digest.uploaded = client_a.records_uploaded() + client_b.records_uploaded();
  digest.forwards = client_a.forwards_applied() + client_b.forwards_applied();
  digest.errors = client_a.errors_acked() + client_b.errors_acked();
  digest.streams = client_a.streams_started() + client_b.streams_started();
  EXPECT_EQ(client_a.streams_in_flight(), 0u);
  EXPECT_EQ(client_a.deferred_pending(), 0u);
  return digest;
}

TEST(StreamingEndToEnd, IdenticalToSerialPumpAcrossTheMatrix) {
  const E2eDigest baseline = run_stream_e2e({});
  ASSERT_EQ(baseline.errors, 0u);
  ASSERT_EQ(baseline.streams, 0u);  // streaming off: the reference pump
  ASSERT_GT(baseline.forwards, 0u);
  ASSERT_FALSE(baseline.state.empty());

  for (const bool wire : {false, true}) {
    for (const std::uint32_t threads : {1u, 4u}) {
      for (const std::size_t shards : {std::size_t{1}, std::size_t{2}}) {
        StreamE2eConfig cfg;
        cfg.streaming = true;
        cfg.wire = wire;
        cfg.delta_threads = threads;
        cfg.apply_shards = shards;
        const E2eDigest streamed = run_stream_e2e(cfg);
        const std::string label = "wire=" + std::to_string(wire) +
                                  " threads=" + std::to_string(threads) +
                                  " shards=" + std::to_string(shards);
        EXPECT_GT(streamed.streams, 0u) << label;
        EXPECT_EQ(streamed.state, baseline.state) << label;
        EXPECT_EQ(streamed.peer, baseline.peer) << label;
        EXPECT_EQ(streamed.uploaded, baseline.uploaded) << label;
        EXPECT_EQ(streamed.forwards, baseline.forwards) << label;
        EXPECT_EQ(streamed.errors, 0u) << label;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// O(window) memory and backpressure
// ---------------------------------------------------------------------------

TEST(StreamingEndToEnd, MemoryStaysWithinWindowBound) {
  VirtualClock clock;
  MemFs local(clock);
  Transport transport(NetProfile::pc_wan());
  CloudServer server(CostProfile::pc());

  ClientConfig config;
  config.stream_window_bytes = 16 * 1024;
  config.stream_chunk_bytes = 4 * 1024;
  config.stream_min_bytes = 64 * 1024;
  config.upload_delay = seconds(1);
  DeltaCfsClient client(local, transport, clock, CostProfile::pc(), config);
  InterceptingFs fs(local, client);
  server.attach(1, transport);

  fs.mkdir("/sync");
  Rng rng(7);
  const Bytes content = rng.bytes(1024 * 1024);  // 64x the window
  local.write_file("/sync/huge.dat", content);
  ASSERT_EQ(client.import_tree(), 1u);

  for (int i = 0; i < 600; ++i) {
    clock.advance(milliseconds(200));
    client.tick(clock.now());
    server.pump();
    client.tick(clock.now());
    if (i > 10 && client.streams_in_flight() == 0) break;
  }
  ASSERT_EQ(client.streams_in_flight(), 0u);
  ASSERT_EQ(client.streams_started(), 1u);
  for (int i = 0; i < 5; ++i) {  // let the commit frame cross the wire
    clock.advance(milliseconds(200));
    server.pump();
    client.tick(clock.now());
  }

  Result<Bytes> uploaded = server.fetch("/sync/huge.dat");
  ASSERT_TRUE(uploaded.is_ok());
  EXPECT_EQ(fnv1a(*uploaded), fnv1a(content));

  // The whole 1 MiB file crossed while tracked buffers never exceeded a
  // few windows — the O(window) guarantee, with real backpressure stalls.
  EXPECT_LE(client.stream_mem_highwater(), 4 * config.stream_window_bytes);
  EXPECT_GT(client.stream_stalls(), 0u);
}

TEST(StreamingEndToEnd, SmallOpsFlowWhileStreamInFlight) {
  VirtualClock clock;
  MemFs local(clock);
  Transport transport(NetProfile::mobile_wan());
  CloudServer server(CostProfile::pc());

  ClientConfig config;
  config.stream_window_bytes = 8 * 1024;
  config.stream_chunk_bytes = 2 * 1024;
  config.stream_min_bytes = 32 * 1024;
  config.upload_delay = seconds(1);
  DeltaCfsClient client(local, transport, clock, CostProfile::pc(), config);
  InterceptingFs fs(local, client);
  server.attach(1, transport);

  fs.mkdir("/sync");
  Rng rng(11);
  const Bytes big = rng.bytes(256 * 1024);
  local.write_file("/sync/big.dat", big);
  ASSERT_EQ(client.import_tree(), 1u);

  // Mature the import node and open the stream.
  clock.advance(seconds(2));
  client.tick(clock.now());
  server.pump();
  client.tick(clock.now());
  ASSERT_EQ(client.streams_in_flight(), 1u);

  // A small interactive op written mid-stream must not wait for the bulk
  // transfer: the per-class QoS scopes blocking to the stream's own path.
  fs.write_file("/sync/note.txt", rng.text(512));
  // An update to the streamed path itself must park until commit.
  {
    Result<FileHandle> h = fs.open("/sync/big.dat");
    ASSERT_TRUE(h.is_ok());
    fs.write(*h, 1000, rng.bytes(256));
    fs.close(*h);
  }

  bool note_arrived_mid_stream = false;
  bool big_write_deferred = false;
  for (int i = 0; i < 600 && client.streams_in_flight() > 0; ++i) {
    clock.advance(milliseconds(200));
    client.tick(clock.now());
    server.pump();
    client.tick(clock.now());
    if (client.streams_in_flight() > 0) {
      if (server.fetch("/sync/note.txt").is_ok()) {
        note_arrived_mid_stream = true;
      }
      if (client.deferred_pending() > 0) big_write_deferred = true;
    }
  }
  EXPECT_TRUE(note_arrived_mid_stream);
  EXPECT_TRUE(big_write_deferred);

  for (int i = 0; i < 100; ++i) {
    clock.advance(milliseconds(200));
    client.tick(clock.now());
    server.pump();
    client.tick(clock.now());
  }
  client.flush(clock.now());
  server.pump();
  client.tick(clock.now());
  server.pump();

  // The deferred same-path write applied after the stream committed.
  Result<Bytes> final_local = local.read_file("/sync/big.dat");
  Result<Bytes> final_cloud = server.fetch("/sync/big.dat");
  ASSERT_TRUE(final_local.is_ok());
  ASSERT_TRUE(final_cloud.is_ok());
  EXPECT_EQ(fnv1a(*final_cloud), fnv1a(*final_local));
  EXPECT_NE(fnv1a(*final_cloud), fnv1a(big));  // the patch landed
  EXPECT_EQ(client.deferred_pending(), 0u);
  EXPECT_EQ(client.errors_acked(), 0u);
}

}  // namespace
}  // namespace dcfs
