#include <gtest/gtest.h>

#include "net/transport.h"

namespace dcfs {
namespace {

TEST(NetProfileTest, TransferTimes) {
  const NetProfile profile = NetProfile::pc_wan();
  EXPECT_EQ(profile.upload_time(12'500'000), seconds(1));
  EXPECT_EQ(profile.upload_time(0), 0);
  const NetProfile mobile = NetProfile::mobile_wan();
  EXPECT_GT(mobile.upload_time(1 << 20), profile.upload_time(1 << 20));
}

TEST(TransportTest, FramesFlowBothWays) {
  Transport transport(NetProfile::pc_wan());
  EXPECT_TRUE(transport.idle());

  transport.client_send(to_bytes("up1"));
  transport.client_send(to_bytes("up2"));
  EXPECT_FALSE(transport.idle());

  auto frame = transport.server_poll();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(as_text(*frame), "up1");
  frame = transport.server_poll();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(as_text(*frame), "up2");
  EXPECT_FALSE(transport.server_poll().has_value());

  transport.server_send(to_bytes("down"));
  frame = transport.client_poll();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(as_text(*frame), "down");
  EXPECT_TRUE(transport.idle());
}

TEST(TransportTest, MeterCountsWireBytesIncludingOverhead) {
  Transport transport(NetProfile::pc_wan());
  const std::uint64_t overhead = transport.profile().frame_overhead;

  transport.client_send(Bytes(100, 'x'));
  EXPECT_EQ(transport.meter().up_bytes(), 100 + overhead);
  EXPECT_EQ(transport.meter().up_messages(), 1u);

  transport.server_send(Bytes(50, 'y'));
  EXPECT_EQ(transport.meter().down_bytes(), 50 + overhead);
  EXPECT_EQ(transport.meter().total_bytes(), 150 + 2 * overhead);

  transport.reset_meter();
  EXPECT_EQ(transport.meter().total_bytes(), 0u);
}

TEST(TransportTest, SendReturnsModeledWireTime) {
  Transport transport(NetProfile::mobile_wan());
  const Duration t = transport.client_send(Bytes(500'000, 'x'));
  EXPECT_GT(t, seconds(1) / 2);  // ~1s at 500 KB/s, minus nothing
}

TEST(TrafficMeterTest, TueComputation) {
  TrafficMeter meter;
  meter.add_up(3000);
  meter.add_down(1000);
  EXPECT_DOUBLE_EQ(meter.tue(1000), 4.0);
  EXPECT_DOUBLE_EQ(meter.tue(0), 0.0);
}

}  // namespace
}  // namespace dcfs
