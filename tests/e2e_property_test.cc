// End-to-end property tests: the golden invariant of a sync system is that
// after ANY sequence of application file operations and a quiet period,
// the cloud's view equals the client's local view — byte for byte, for
// every file.  These tests drive randomized op sequences (seeded, so
// failures reproduce) through the full DeltaCFS stack and check exactly
// that, plus version-monotonicity and tmp-dir hygiene.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "baselines/deltacfs_system.h"
#include "common/rng.h"
#include "vfs/path.h"

namespace dcfs {
namespace {

class RandomOpsDriver {
 public:
  RandomOpsDriver(DeltaCfsSystem& system, VirtualClock& clock,
                  std::uint64_t seed)
      : system_(system), clock_(clock), rng_(seed) {
    system_.fs().mkdir("/sync");
  }

  void run(int ops) {
    for (int i = 0; i < ops; ++i) {
      step();
      // Sometimes advance time so debounce/delay/timeout machinery runs.
      if (rng_.next_below(4) == 0) {
        const Duration dt = milliseconds(100 + rng_.next_below(3000));
        const Duration step_size = milliseconds(200);
        for (Duration t = 0; t < dt; t += step_size) {
          clock_.advance(step_size);
          system_.tick(clock_.now());
        }
      }
    }
  }

  void drain() {
    for (int i = 0; i < 100; ++i) {
      clock_.advance(milliseconds(200));
      system_.tick(clock_.now());
    }
    system_.finish(clock_.now());
    // One more settle round: finish may have produced acks.
    system_.tick(clock_.now());
  }

 private:
  std::string random_name() {
    return "/sync/f" + std::to_string(rng_.next_below(8));
  }

  std::string existing_file() {
    std::vector<std::string> files;
    collect_files("/sync", files);
    if (files.empty()) return {};
    return files[rng_.next_below(files.size())];
  }

  void collect_files(const std::string& dir, std::vector<std::string>& out) {
    Result<std::vector<std::string>> names = system_.fs().list_dir(dir);
    if (!names) return;
    for (const std::string& name : *names) {
      const std::string full = path::join(dir, name);
      Result<FileStat> st = system_.fs().stat(full);
      if (!st) continue;
      if (st->type == NodeType::file) {
        out.push_back(full);
      } else {
        collect_files(full, out);
      }
    }
  }

  void step() {
    FileSystem& fs = system_.fs();
    switch (rng_.next_below(8)) {
      case 0: {  // create + write + close
        const std::string name = random_name();
        Result<FileHandle> handle = fs.create(name);
        if (!handle) handle = fs.open(name);
        if (!handle) return;
        const Bytes data = rng_.bytes(1 + rng_.next_below(50'000));
        fs.write(*handle, 0, data);
        fs.close(*handle);
        break;
      }
      case 1: {  // random in-place write
        const std::string target = existing_file();
        if (target.empty()) return;
        Result<FileHandle> handle = fs.open(target);
        if (!handle) return;
        const std::uint64_t size = fs.stat(target)->size;
        const std::uint64_t offset = rng_.next_below(size + 1000);
        const Bytes data = rng_.bytes(1 + rng_.next_below(8'000));
        fs.write(*handle, offset, data);
        fs.close(*handle);
        break;
      }
      case 2: {  // truncate
        const std::string target = existing_file();
        if (target.empty()) return;
        const std::uint64_t size = fs.stat(target)->size;
        fs.truncate(target, rng_.next_below(size + 500));
        break;
      }
      case 3: {  // rename (possibly over existing)
        const std::string from = existing_file();
        if (from.empty()) return;
        const std::string to = random_name();
        fs.rename(from, to);
        break;
      }
      case 4: {  // unlink
        const std::string target = existing_file();
        if (target.empty()) return;
        fs.unlink(target);
        break;
      }
      case 5: {  // hard link
        const std::string from = existing_file();
        if (from.empty()) return;
        const std::string to = random_name();
        fs.link(from, to);
        break;
      }
      case 6: {  // transactional update of an existing file
        const std::string target = existing_file();
        if (target.empty()) return;
        Result<Bytes> content = fs.read_file(target);
        if (!content) return;  // may be quarantined etc.
        Bytes edited = std::move(*content);
        if (!edited.empty()) {
          edited[rng_.next_below(edited.size())] ^= 0x42;
        }
        append(edited, rng_.bytes(rng_.next_below(2'000)));
        const std::string backup = target + ".bak";
        const std::string temp = target + ".tmp";
        fs.rename(target, backup);
        fs.write_file(temp, edited);
        fs.rename(temp, target);
        fs.unlink(backup);
        break;
      }
      case 7: {  // mkdir + nested file
        const std::string dir = "/sync/d" + std::to_string(rng_.next_below(3));
        fs.mkdir(dir);
        // Bind rng-consuming expressions in statement order (argument
        // evaluation order is unspecified and would break seed replay).
        const std::string name =
            dir + "/g" + std::to_string(rng_.next_below(3));
        const Bytes data = rng_.bytes(1 + rng_.next_below(10'000));
        fs.write_file(name, data);
        break;
      }
    }
  }

  DeltaCfsSystem& system_;
  VirtualClock& clock_;
  Rng rng_;
};

/// Collects every regular file under /sync with its content.
std::map<std::string, Bytes> local_snapshot(FileSystem& fs,
                                            const std::string& dir) {
  std::map<std::string, Bytes> out;
  Result<std::vector<std::string>> names = fs.list_dir(dir);
  if (!names) return out;
  for (const std::string& name : *names) {
    const std::string full = path::join(dir, name);
    Result<FileStat> st = fs.stat(full);
    if (!st) continue;
    if (st->type == NodeType::file) {
      Result<Bytes> content = fs.read_file(full);
      if (content) out.emplace(full, std::move(*content));
    } else {
      for (auto& [k, v] : local_snapshot(fs, full)) {
        out.emplace(k, std::move(v));
      }
    }
  }
  return out;
}

class E2ePropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(E2ePropertyTest, CloudConvergesToLocalAfterRandomOps) {
  VirtualClock clock;
  DeltaCfsSystem system(clock, CostProfile::pc(), NetProfile::pc_wan());
  RandomOpsDriver driver(system, clock, GetParam());

  driver.run(120);
  driver.drain();

  const auto local = local_snapshot(system.local(), "/sync");
  // Every local file must exist on the cloud with identical content.
  for (const auto& [path, content] : local) {
    Result<Bytes> cloud = system.server().fetch(path);
    ASSERT_TRUE(cloud.is_ok()) << path << " missing on cloud (seed "
                               << GetParam() << ")";
    EXPECT_EQ(*cloud, content) << path << " differs (seed " << GetParam()
                               << ")";
  }
  // Every cloud file (modulo conflict copies) must exist locally.
  for (const std::string& path : system.server().paths()) {
    if (path.find(".conflict-") != std::string::npos) continue;
    EXPECT_TRUE(local.contains(path))
        << path << " exists on cloud but not locally (seed " << GetParam()
        << ")";
  }
  // Single client: no conflicts can occur.
  EXPECT_EQ(system.client().conflicts_acked(), 0u) << "seed " << GetParam();
  // The preserve tmp dir is empty after the drain (all relations expired).
  if (auto names = system.local().list_dir("/.dcfs_tmp")) {
    EXPECT_TRUE(names->empty()) << "leaked preserved files (seed "
                                << GetParam() << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, E2ePropertyTest,
                         ::testing::Range<std::uint64_t>(1, 41));

class ChecksummedE2eTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChecksummedE2eTest, ChecksummedStackConvergesToo) {
  ClientConfig config;
  config.enable_checksums = true;
  VirtualClock clock;
  DeltaCfsSystem system(clock, CostProfile::pc(), NetProfile::pc_wan(),
                        config);
  RandomOpsDriver driver(system, clock, GetParam());
  driver.run(80);
  driver.drain();

  const auto local = local_snapshot(system.local(), "/sync");
  for (const auto& [path, content] : local) {
    Result<Bytes> cloud = system.server().fetch(path);
    ASSERT_TRUE(cloud.is_ok()) << path;
    EXPECT_EQ(*cloud, content) << path;
  }
  EXPECT_TRUE(system.client().detected_corruption().empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChecksummedE2eTest,
                         ::testing::Values(777, 778, 779, 780, 781, 782));

}  // namespace
}  // namespace dcfs
