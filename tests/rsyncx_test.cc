#include <gtest/gtest.h>

#include <algorithm>

#include "common/checksum.h"
#include "common/rng.h"
#include "metrics/cost.h"
#include "rsyncx/cdc.h"
#include "rsyncx/delta.h"

namespace dcfs::rsyncx {
namespace {

Bytes mutate_insert(const Bytes& base, std::size_t at, ByteSpan inserted) {
  Bytes out(base.begin(), base.begin() + static_cast<std::ptrdiff_t>(at));
  append(out, inserted);
  out.insert(out.end(), base.begin() + static_cast<std::ptrdiff_t>(at),
             base.end());
  return out;
}

void expect_roundtrip(const Bytes& base, const Bytes& target,
                      std::uint32_t block_size) {
  // Remote mode.
  const Signature signature =
      compute_signature(base, block_size, /*with_strong=*/true, nullptr);
  const Delta remote = compute_delta(signature, target, nullptr);
  Result<Bytes> rebuilt = apply_delta(base, remote);
  ASSERT_TRUE(rebuilt.is_ok()) << rebuilt.status().to_string();
  EXPECT_EQ(*rebuilt, target);

  // Local (bitwise-compare) mode must produce the same reconstruction.
  const Delta local = compute_delta_local(base, target, block_size, nullptr);
  Result<Bytes> rebuilt_local = apply_delta(base, local);
  ASSERT_TRUE(rebuilt_local.is_ok());
  EXPECT_EQ(*rebuilt_local, target);
}

TEST(DeltaTest, IdenticalFilesAreAllCopy) {
  Rng rng(1);
  const Bytes base = rng.bytes(64 * 1024);
  const Delta delta = compute_delta_local(base, base, 4096, nullptr);
  EXPECT_EQ(delta.literal_bytes(), 0u);
  EXPECT_EQ(delta.copied_bytes(), base.size());
  // Adjacent copies merge into one command.
  EXPECT_EQ(delta.commands.size(), 1u);
  EXPECT_LT(delta.wire_size(), 64u);
}

TEST(DeltaTest, EmptyBaseIsAllLiteral) {
  Rng rng(2);
  const Bytes target = rng.bytes(10'000);
  expect_roundtrip({}, target, 4096);
  const Delta delta = compute_delta_local({}, target, 4096, nullptr);
  EXPECT_EQ(delta.literal_bytes(), target.size());
}

TEST(DeltaTest, EmptyTargetIsEmptyDelta) {
  Rng rng(3);
  const Bytes base = rng.bytes(10'000);
  const Delta delta = compute_delta_local(base, {}, 4096, nullptr);
  EXPECT_TRUE(delta.commands.empty());
  EXPECT_EQ(apply_delta(base, delta)->size(), 0u);
}

TEST(DeltaTest, InsertionOnlyCostsTheInsertedBytes) {
  Rng rng(4);
  const Bytes base = rng.bytes(1 << 20);
  const Bytes inserted = rng.bytes(1000);
  const Bytes target = mutate_insert(base, 500'000, inserted);
  expect_roundtrip(base, target, 4096);

  const Delta delta = compute_delta_local(base, target, 4096, nullptr);
  // Literals: the inserted bytes plus at most ~2 disturbed blocks.
  EXPECT_LE(delta.literal_bytes(), inserted.size() + 2 * 4096);
  EXPECT_GE(delta.copied_bytes(), base.size() - 2 * 4096);
}

TEST(DeltaTest, AppendOnlyCostsTheAppendedBytes) {
  Rng rng(5);
  const Bytes base = rng.bytes(100'000);
  Bytes target = base;
  append(target, rng.bytes(5000));
  expect_roundtrip(base, target, 4096);
  const Delta delta = compute_delta_local(base, target, 4096, nullptr);
  EXPECT_LE(delta.literal_bytes(), 5000u + 4096u);
}

TEST(DeltaTest, TailBlockMatches) {
  Rng rng(6);
  const Bytes base = rng.bytes(10'000);  // 2 full blocks + 1808B tail
  const Bytes target = base;             // identical, incl. short tail
  const Delta delta = compute_delta_local(base, target, 4096, nullptr);
  EXPECT_EQ(delta.literal_bytes(), 0u);
}

TEST(DeltaTest, CompletelyDifferentContentIsAllLiteral) {
  Rng rng(7);
  const Bytes base = rng.bytes(50'000);
  const Bytes target = rng.bytes(50'000);
  expect_roundtrip(base, target, 4096);
  const Delta delta = compute_delta_local(base, target, 4096, nullptr);
  EXPECT_EQ(delta.literal_bytes(), target.size());
}

TEST(DeltaTest, LocalModeSkipsStrongHashing) {
  Rng rng(8);
  const Bytes base = rng.bytes(1 << 20);
  const Bytes target = mutate_insert(base, 1000, rng.bytes(100));

  CostMeter remote_meter(CostProfile::pc());
  const Signature signature =
      compute_signature(base, 4096, /*with_strong=*/true, &remote_meter);
  compute_delta(signature, target, &remote_meter);

  CostMeter local_meter(CostProfile::pc());
  compute_delta_local(base, target, 4096, &local_meter);

  EXPECT_GT(remote_meter.units_for(CostKind::strong_hash), 0u);
  EXPECT_EQ(local_meter.units_for(CostKind::strong_hash), 0u);
  // The paper's key claim: bitwise comparison is much cheaper overall.
  EXPECT_LT(local_meter.units(), remote_meter.units());
}

TEST(DeltaTest, WeakOnlySignatureSkipsStrongStorageAndWireBytes) {
  Rng rng(80);
  const Bytes base = rng.bytes(100'000);  // 25 blocks at 4096
  const Signature weak_only =
      compute_signature(base, 4096, /*with_strong=*/false, nullptr);
  EXPECT_FALSE(weak_only.has_strong);
  EXPECT_EQ(weak_only.block_count(), 25u);
  EXPECT_TRUE(weak_only.strong.empty());
  EXPECT_EQ(weak_only.wire_size(), 16u + 25u * 4u);

  const Signature with_strong =
      compute_signature(base, 4096, /*with_strong=*/true, nullptr);
  EXPECT_EQ(with_strong.strong.size(), 25u);
  EXPECT_EQ(with_strong.wire_size(), 16u + 25u * 20u);
  EXPECT_EQ(weak_only.weak, with_strong.weak);
}

TEST(DeltaTest, RemoteDeltaAgainstWeakOnlySignatureNeverMatches) {
  // Remote mode must confirm matches with the strong digest; a weak-only
  // signature offers none, so every candidate is rejected and the delta
  // degenerates to one big literal (correct, just not compact).
  Rng rng(81);
  const Bytes base = rng.bytes(100'000);
  const Signature weak_only =
      compute_signature(base, 4096, /*with_strong=*/false, nullptr);
  const Delta delta = compute_delta(weak_only, base, nullptr);
  EXPECT_EQ(delta.copied_bytes(), 0u);
  EXPECT_EQ(delta.literal_bytes(), base.size());
  EXPECT_EQ(apply_delta(base, delta).value(), base);
}

TEST(DeltaTest, WireRoundTrip) {
  Rng rng(9);
  const Bytes base = rng.bytes(100'000);
  const Bytes target = mutate_insert(base, 40'000, rng.bytes(2000));
  const Delta delta = compute_delta_local(base, target, 4096, nullptr);

  const Bytes wire = encode_delta(delta);
  EXPECT_EQ(wire.size(), delta.wire_size());
  Result<Delta> decoded = decode_delta(wire);
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(apply_delta(base, *decoded).value(), target);
}

TEST(DeltaTest, DecodeRejectsTruncation) {
  Rng rng(10);
  const Bytes base = rng.bytes(10'000);
  const Delta delta = compute_delta_local(base, base, 4096, nullptr);
  Bytes wire = encode_delta(delta);
  wire.resize(wire.size() - 1);
  EXPECT_FALSE(decode_delta(wire).is_ok());
  EXPECT_FALSE(decode_delta(Bytes{1, 2, 3}).is_ok());
}

TEST(DeltaTest, ApplyRejectsOutOfRangeCopy) {
  Delta bogus;
  bogus.target_size = 10;
  Command cmd;
  cmd.kind = Command::Kind::copy;
  cmd.src_offset = 100;
  cmd.length = 10;
  bogus.commands.push_back(cmd);
  EXPECT_EQ(apply_delta(Bytes(20, 0), bogus).code(), Errc::corruption);
}

TEST(DeltaTest, WeakCollisionIsResolvedByVerification) {
  // Craft two different blocks with identical weak checksums: the rolling
  // sum is permutation-invariant within... actually a,b sums differ under
  // permutation; instead use blocks that swap two equidistant byte pairs.
  // Simpler: brute-force a small collision.
  Bytes a{1, 2, 3, 4};
  Bytes b{2, 1, 4, 3};  // not guaranteed equal; search below
  bool found = false;
  Rng rng(11);
  const std::uint32_t target_weak = weak_checksum(a);
  for (int i = 0; i < 200'000 && !found; ++i) {
    b = rng.bytes(4);
    found = (weak_checksum(b) == target_weak) && b != a;
  }
  if (!found) GTEST_SKIP() << "no collision found in budget";

  // base = [a]; target = [b]: the weak hash matches but contents differ —
  // verification must reject the copy and emit a literal.
  const Delta delta = compute_delta_local(a, b, 4, nullptr);
  EXPECT_EQ(apply_delta(a, delta).value(), b);
  EXPECT_EQ(delta.literal_bytes(), b.size());
}

class DeltaBlockSizeTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(DeltaBlockSizeTest, RoundTripWithEdits) {
  Rng rng(GetParam());
  const Bytes base = rng.bytes(200'000);
  Bytes target = mutate_insert(base, 77'777, rng.bytes(313));
  // Also flip some bytes in place.
  for (int i = 0; i < 5; ++i) {
    target[rng.next_below(target.size())] ^= 0xFF;
  }
  expect_roundtrip(base, target, GetParam());
}

INSTANTIATE_TEST_SUITE_P(BlockSizes, DeltaBlockSizeTest,
                         ::testing::Values(128, 512, 1024, 4096, 16384,
                                           65536));

// ---------------------------------------------------------------------------
// CDC
// ---------------------------------------------------------------------------

TEST(CdcTest, ChunksCoverInputExactly) {
  Rng rng(20);
  const Bytes data = rng.bytes(10 << 20);
  const auto chunks = chunk_cdc(data, CdcParams::seafile(), nullptr);
  std::uint64_t offset = 0;
  for (const Chunk& chunk : chunks) {
    EXPECT_EQ(chunk.offset, offset);
    offset += chunk.length;
  }
  EXPECT_EQ(offset, data.size());
}

TEST(CdcTest, RespectsMinMaxBounds) {
  Rng rng(21);
  const Bytes data = rng.bytes(20 << 20);
  const CdcParams params = CdcParams::seafile();
  const auto chunks = chunk_boundaries(data, params, nullptr);
  for (std::size_t i = 0; i + 1 < chunks.size(); ++i) {
    EXPECT_GE(chunks[i].length, params.minimum);
    EXPECT_LE(chunks[i].length, params.maximum);
  }
}

TEST(CdcTest, AverageChunkSizeIsRoughlyTarget) {
  Rng rng(22);
  const Bytes data = rng.bytes(64 << 20);
  const auto chunks = chunk_boundaries(data, CdcParams::seafile(), nullptr);
  const double average =
      static_cast<double>(data.size()) / static_cast<double>(chunks.size());
  EXPECT_GT(average, 256.0 * 1024);        // >= min by construction
  EXPECT_LT(average, 3.0 * 1024 * 1024);   // within ~3x of the 1 MB target
}

TEST(CdcTest, LocalEditOnlyDisturbsNearbyChunks) {
  Rng rng(23);
  Bytes data = rng.bytes(16 << 20);
  const auto before = chunk_cdc(data, CdcParams::seafile(), nullptr);

  // Flip bytes in the middle; chunks far from the edit keep their ids.
  for (int i = 0; i < 100; ++i) data[8'000'000 + i] ^= 0x5A;
  const auto after = chunk_cdc(data, CdcParams::seafile(), nullptr);

  std::size_t unchanged = 0;
  for (const Chunk& chunk : after) {
    for (const Chunk& old : before) {
      if (old.id == chunk.id) {
        ++unchanged;
        break;
      }
    }
  }
  EXPECT_GT(unchanged, after.size() / 2);
}

TEST(CdcTest, ContentShiftPreservesMostChunks) {
  // The CDC selling point: inserting bytes early must not re-chunk the
  // whole file (fixed-size blocking would).
  Rng rng(24);
  Bytes data = rng.bytes(16 << 20);
  const auto before = chunk_cdc(data, CdcParams::seafile(), nullptr);

  const Bytes inserted = rng.bytes(1000);
  data.insert(data.begin() + 100'000, inserted.begin(), inserted.end());
  const auto after = chunk_cdc(data, CdcParams::seafile(), nullptr);

  std::size_t reused = 0;
  for (const Chunk& chunk : after) {
    for (const Chunk& old : before) {
      if (old.id == chunk.id) {
        ++reused;
        break;
      }
    }
  }
  EXPECT_GT(reused, after.size() * 2 / 3);
}

TEST(CdcTest, EmptyInputYieldsNoChunks) {
  EXPECT_TRUE(chunk_cdc({}, CdcParams::seafile(), nullptr).empty());
}

TEST(CdcTest, FineParamsMakeSmallChunks) {
  Rng rng(25);
  const Bytes data = rng.bytes(1 << 20);
  const auto chunks = chunk_boundaries(data, CdcParams::fine(), nullptr);
  const double average =
      static_cast<double>(data.size()) / static_cast<double>(chunks.size());
  EXPECT_LT(average, 16.0 * 1024);
}

}  // namespace
}  // namespace dcfs::rsyncx
