#include <gtest/gtest.h>

#include "common/rng.h"
#include "merge/merge3.h"

namespace dcfs::merge {
namespace {

Bytes text(std::string_view s) { return to_bytes(s); }

std::string merged(std::string_view base, std::string_view ours,
                   std::string_view theirs, bool* clean = nullptr) {
  const MergeResult result = merge3(text(base), text(ours), text(theirs));
  if (clean != nullptr) *clean = result.clean;
  return to_string(result.content);
}

// ---------------------------------------------------------------------------
// split_lines / diff_lines
// ---------------------------------------------------------------------------

TEST(SplitLinesTest, KeepsNewlinesWithLines) {
  const auto lines = split_lines("a\nb\nc");
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "a\n");
  EXPECT_EQ(lines[1], "b\n");
  EXPECT_EQ(lines[2], "c");  // no trailing newline
  EXPECT_TRUE(split_lines("").empty());
  EXPECT_EQ(split_lines("\n").size(), 1u);
}

TEST(DiffLinesTest, IdenticalSequencesHaveNoHunks) {
  const auto lines = split_lines("a\nb\nc\n");
  EXPECT_TRUE(diff_lines(lines, lines).empty());
}

TEST(DiffLinesTest, InsertionDeletionReplacement) {
  const auto a = split_lines("a\nb\nc\n");
  const auto b = split_lines("a\nX\nb\nc\n");   // insertion at 1
  auto hunks = diff_lines(a, b);
  ASSERT_EQ(hunks.size(), 1u);
  EXPECT_EQ(hunks[0], (DiffHunk{1, 1, 1, 2}));

  const auto c = split_lines("a\nc\n");          // deletion of b
  hunks = diff_lines(a, c);
  ASSERT_EQ(hunks.size(), 1u);
  EXPECT_EQ(hunks[0], (DiffHunk{1, 2, 1, 1}));

  const auto d = split_lines("a\nB\nc\n");       // replacement of b
  hunks = diff_lines(a, d);
  ASSERT_EQ(hunks.size(), 1u);
  EXPECT_EQ(hunks[0], (DiffHunk{1, 2, 1, 2}));
}

TEST(DiffLinesTest, HunksReconstructTarget) {
  Rng rng(1);
  for (int round = 0; round < 30; ++round) {
    // Random line soups with shared vocabulary so matches exist.
    auto make = [&](int n) {
      std::string out;
      for (int i = 0; i < n; ++i) {
        out += "line" + std::to_string(rng.next_below(12)) + "\n";
      }
      return out;
    };
    const std::string a_text = make(2 + static_cast<int>(rng.next_below(40)));
    const std::string b_text = make(2 + static_cast<int>(rng.next_below(40)));
    const auto a = split_lines(a_text);
    const auto b = split_lines(b_text);
    const auto hunks = diff_lines(a, b);

    // Replay the hunks over `a`: must produce exactly `b`.
    std::string rebuilt;
    std::size_t ai = 0;
    for (const DiffHunk& hunk : hunks) {
      for (; ai < hunk.a_begin; ++ai) rebuilt += a[ai];
      for (std::size_t bi = hunk.b_begin; bi < hunk.b_end; ++bi) {
        rebuilt += b[bi];
      }
      ai = hunk.a_end;
    }
    for (; ai < a.size(); ++ai) rebuilt += a[ai];
    EXPECT_EQ(rebuilt, b_text) << "round " << round;
  }
}

// ---------------------------------------------------------------------------
// merge3
// ---------------------------------------------------------------------------

TEST(Merge3Test, NoChangesYieldsBase) {
  bool clean = false;
  EXPECT_EQ(merged("a\nb\n", "a\nb\n", "a\nb\n", &clean), "a\nb\n");
  EXPECT_TRUE(clean);
}

TEST(Merge3Test, OneSidedChangesApply) {
  bool clean = false;
  EXPECT_EQ(merged("a\nb\nc\n", "a\nB\nc\n", "a\nb\nc\n", &clean),
            "a\nB\nc\n");
  EXPECT_TRUE(clean);
  EXPECT_EQ(merged("a\nb\nc\n", "a\nb\nc\n", "a\nb\nC\n", &clean),
            "a\nb\nC\n");
  EXPECT_TRUE(clean);
}

TEST(Merge3Test, DisjointChangesBothApply) {
  bool clean = false;
  const std::string base = "one\ntwo\nthree\nfour\nfive\n";
  const std::string ours = "ONE\ntwo\nthree\nfour\nfive\n";
  const std::string theirs = "one\ntwo\nthree\nfour\nFIVE\n";
  EXPECT_EQ(merged(base, ours, theirs, &clean),
            "ONE\ntwo\nthree\nfour\nFIVE\n");
  EXPECT_TRUE(clean);
}

TEST(Merge3Test, IdenticalChangesMergeCleanly) {
  bool clean = false;
  EXPECT_EQ(merged("a\nb\n", "a\nX\n", "a\nX\n", &clean), "a\nX\n");
  EXPECT_TRUE(clean);
}

TEST(Merge3Test, OverlappingDifferentChangesConflict) {
  const MergeResult result =
      merge3(text("a\nb\nc\n"), text("a\nOURS\nc\n"), text("a\nTHEIRS\nc\n"),
             {.ours_label = "laptop", .theirs_label = "phone"});
  EXPECT_FALSE(result.clean);
  EXPECT_EQ(result.conflicts, 1u);
  const std::string out = to_string(result.content);
  EXPECT_NE(out.find("<<<<<<< laptop\nOURS\n"), std::string::npos);
  EXPECT_NE(out.find("=======\nTHEIRS\n"), std::string::npos);
  EXPECT_NE(out.find(">>>>>>> phone\n"), std::string::npos);
  EXPECT_EQ(out.find("a\n"), 0u);  // shared prefix survives
}

TEST(Merge3Test, InsertionsAtBothEnds) {
  bool clean = false;
  EXPECT_EQ(merged("m\n", "top\nm\n", "m\nbottom\n", &clean),
            "top\nm\nbottom\n");
  EXPECT_TRUE(clean);
}

TEST(Merge3Test, DeletionVersusEditConflicts) {
  const MergeResult result =
      merge3(text("a\nb\nc\n"), text("a\nc\n"), text("a\nB!\nc\n"));
  EXPECT_FALSE(result.clean);
  EXPECT_EQ(result.conflicts, 1u);
}

TEST(Merge3Test, BothDeleteSameRegionCleanly) {
  bool clean = false;
  EXPECT_EQ(merged("a\nb\nc\n", "a\nc\n", "a\nc\n", &clean), "a\nc\n");
  EXPECT_TRUE(clean);
}

TEST(Merge3Test, EmptyInputs) {
  bool clean = false;
  EXPECT_EQ(merged("", "new\n", "", &clean), "new\n");
  EXPECT_TRUE(clean);
  EXPECT_EQ(merged("gone\n", "", "gone\n", &clean), "");
  EXPECT_TRUE(clean);
  EXPECT_EQ(merged("", "", "", &clean), "");
  EXPECT_TRUE(clean);
}

TEST(Merge3Test, MultipleIndependentRegions) {
  const std::string base = "1\n2\n3\n4\n5\n6\n7\n8\n9\n";
  const std::string ours = "1\nA\n3\n4\n5\n6\n7\n8\n9\n";   // edits line 2
  const std::string theirs = "1\n2\n3\n4\n5\n6\n7\nB\n9\n"; // edits line 8
  bool clean = false;
  EXPECT_EQ(merged(base, ours, theirs, &clean),
            "1\nA\n3\n4\n5\n6\n7\nB\n9\n");
  EXPECT_TRUE(clean);
}

TEST(Merge3Test, RandomizedOneSidedMergesAreClean) {
  Rng rng(5);
  for (int round = 0; round < 20; ++round) {
    std::string base;
    for (int i = 0; i < 30; ++i) {
      base += "line " + std::to_string(i) + "\n";
    }
    // Mutate only one side.
    auto lines = split_lines(base);
    std::string ours;
    for (std::size_t i = 0; i < lines.size(); ++i) {
      if (rng.next_below(5) == 0) {
        ours += "changed " + std::to_string(round) + "\n";
      } else {
        ours += std::string(lines[i]);
      }
    }
    bool clean = false;
    EXPECT_EQ(merged(base, ours, base, &clean), ours) << round;
    EXPECT_TRUE(clean) << round;
    EXPECT_EQ(merged(base, base, ours, &clean), ours) << round;
    EXPECT_TRUE(clean) << round;
  }
}

}  // namespace
}  // namespace dcfs::merge
