// Violation class: calling a DCFS_REQUIRES(mu_) helper without holding the
// lock (the *_locked convention every subsystem uses).
// Expected: error: calling function 'compact_locked' requires holding
// mutex 'mu_' exclusively
#include "chk/annotations.h"
#include "chk/lockdep.h"

namespace {

class Store {
 public:
  void compact() {
    compact_locked();  // BAD: public entry forgot to take mu_
  }

 private:
  void compact_locked() DCFS_REQUIRES(mu_) { ++generation_; }

  dcfs::chk::Mutex mu_{"test.store"};
  long generation_ DCFS_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Store store;
  store.compact();
  return 0;
}
