// Violation class: writing a DCFS_GUARDED_BY field without its lock.
// Expected: error: writing variable 'balance_' requires holding mutex
// 'mu_' exclusively
#include "chk/annotations.h"
#include "chk/lockdep.h"

namespace {

class Account {
 public:
  void deposit(long amount) {
    balance_ += amount;  // BAD: mu_ not held
  }

 private:
  dcfs::chk::Mutex mu_{"test.account"};
  long balance_ DCFS_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Account account;
  account.deposit(1);
  return 0;
}
