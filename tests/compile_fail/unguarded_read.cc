// Violation class: reading a DCFS_GUARDED_BY field without its lock.
// Expected: error: reading variable 'balance_' requires holding mutex 'mu_'
#include "chk/annotations.h"
#include "chk/lockdep.h"

namespace {

class Account {
 public:
  [[nodiscard]] long balance() const {
    return balance_;  // BAD: mu_ not held
  }

 private:
  mutable dcfs::chk::Mutex mu_{"test.account"};
  long balance_ DCFS_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  const Account account;
  return account.balance() == 0 ? 0 : 1;
}
