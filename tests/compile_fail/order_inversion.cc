// Violation class: acquiring two locks against their declared order
// (DCFS_ACQUIRED_AFTER — the static twin of a runtime lockdep cycle; the
// project-wide order manifest is cross-checked by tools/lockdep_check.py,
// whose --self-test proves the inverted-edge rejection out of process).
// Expected: error/warning: mutex 'a_' must be acquired before 'b_'
#include "chk/annotations.h"
#include "chk/lockdep.h"

namespace {

class TwoLocks {
 public:
  void inverted() {
    b_.lock();
    a_.lock();  // BAD: a_ is declared acquired-before b_
    a_.unlock();
    b_.unlock();
  }

 private:
  dcfs::chk::Mutex a_{"test.order_a"};
  dcfs::chk::Mutex b_ DCFS_ACQUIRED_AFTER(a_){"test.order_b"};
};

}  // namespace

int main() {
  TwoLocks locks;
  locks.inverted();
  return 0;
}
