// Violation class: calling a DCFS_EXCLUDES(mu_) method while already
// holding mu_ — the self-deadlock runtime lockdep caught in KvStore (PR 5),
// now rejected statically.
// Expected: error: cannot call function 'compact' while mutex 'mu_' is held
#include "chk/annotations.h"
#include "chk/lockdep.h"

namespace {

class Store {
 public:
  void compact() DCFS_EXCLUDES(mu_) {
    const dcfs::chk::LockGuard<dcfs::chk::Mutex> lock(mu_);
    ++generation_;
  }

  void mutate() {
    const dcfs::chk::LockGuard<dcfs::chk::Mutex> lock(mu_);
    ++generation_;
    compact();  // BAD: re-enters mu_ — deadlock
  }

 private:
  dcfs::chk::Mutex mu_{"test.store"};
  long generation_ DCFS_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Store store;
  store.mutate();
  return 0;
}
