// Violation class: releasing a capability that is not held (the
// double-release / wrong-branch-unlock bug).
// Expected: error: releasing mutex 'mu' that was not held
#include "chk/annotations.h"
#include "chk/lockdep.h"

int main() {
  dcfs::chk::Mutex mu("test.release");
  mu.lock();
  mu.unlock();
  mu.unlock();  // BAD: already released
  return 0;
}
