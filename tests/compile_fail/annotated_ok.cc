// Control: the annotated idioms every subsystem uses, written correctly —
// this must compile clean under -Wthread-safety -Wthread-safety-beta
// -Werror, proving the harness rejects the violation snippets for their
// violations and not for some environmental reason.
#include "chk/annotations.h"
#include "chk/lockdep.h"

namespace {

class Account {
 public:
  void deposit(long amount) DCFS_EXCLUDES(mu_) {
    const dcfs::chk::LockGuard<dcfs::chk::Mutex> lock(mu_);
    add_locked(amount);
  }

  [[nodiscard]] long balance() const DCFS_EXCLUDES(mu_) {
    const dcfs::chk::LockGuard<dcfs::chk::Mutex> lock(mu_);
    return balance_;
  }

 private:
  void add_locked(long amount) DCFS_REQUIRES(mu_) { balance_ += amount; }

  mutable dcfs::chk::Mutex mu_{"test.account"};
  long balance_ DCFS_GUARDED_BY(mu_) = 0;
};

class Registry {
 public:
  void rename(long id) DCFS_EXCLUDES(mu_) {
    const dcfs::chk::LockGuard<dcfs::chk::SharedMutex> lock(mu_);
    id_ = id;
  }

  [[nodiscard]] long id() const DCFS_EXCLUDES(mu_) {
    const dcfs::chk::SharedLock lock(mu_);  // shared suffices for reads
    return id_;
  }

 private:
  mutable dcfs::chk::SharedMutex mu_{"test.registry"};
  long id_ DCFS_GUARDED_BY(mu_) = 0;
};

class TwoLocks {
 public:
  void in_order() DCFS_EXCLUDES(a_, b_) {
    const dcfs::chk::LockGuard<dcfs::chk::Mutex> first(a_);
    const dcfs::chk::LockGuard<dcfs::chk::Mutex> second(b_);
    ++n_;
  }

 private:
  dcfs::chk::Mutex a_{"test.order_a"};
  dcfs::chk::Mutex b_ DCFS_ACQUIRED_AFTER(a_){"test.order_b"};
  long n_ DCFS_GUARDED_BY(b_) = 0;
};

}  // namespace

int main() {
  Account account;
  account.deposit(5);
  Registry registry;
  registry.rename(7);
  TwoLocks locks;
  locks.in_order();
  return account.balance() == 5 && registry.id() == 7 ? 0 : 1;
}
