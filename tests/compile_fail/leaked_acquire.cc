// Violation class: a function exits still holding a lock it acquired
// (missing unlock on some path — the RAII-guard bypass bug).
// Expected: error: mutex 'mu' is still held at the end of function
#include "chk/annotations.h"
#include "chk/lockdep.h"

namespace {

long counter = 0;

void bump(dcfs::chk::Mutex& mu) {
  mu.lock();
  ++counter;
  // BAD: returns without mu.unlock()
}

}  // namespace

int main() {
  dcfs::chk::Mutex mu("test.leak");
  bump(mu);
  return counter == 1 ? 0 : 1;
}
