// Cross-module integration: multi-client sharing (§III-D), conflict
// handling (§III-C), and the reliability behaviours of Table IV.
#include <gtest/gtest.h>

#include "baselines/deltacfs_system.h"
#include "common/rng.h"

namespace dcfs {
namespace {

/// Two DeltaCFS clients sharing one cloud.
class MultiClientTest : public ::testing::Test {
 protected:
  MultiClientTest()
      : local_a_(clock_),
        local_b_(clock_),
        transport_a_(NetProfile::pc_wan()),
        transport_b_(NetProfile::pc_wan()),
        server_(CostProfile::pc()),
        client_a_(local_a_, transport_a_, clock_, CostProfile::pc(),
                  make_config(1)),
        client_b_(local_b_, transport_b_, clock_, CostProfile::pc(),
                  make_config(2)),
        fs_a_(local_a_, client_a_),
        fs_b_(local_b_, client_b_) {
    server_.attach(1, transport_a_);
    server_.attach(2, transport_b_);
    fs_a_.mkdir("/sync");
    fs_b_.mkdir("/sync");
    settle();
  }

  static ClientConfig make_config(std::uint32_t id) {
    ClientConfig config;
    config.client_id = id;
    return config;
  }

  /// Advances time, ticking both clients and the server until quiet.
  void settle(Duration duration = seconds(12)) {
    for (Duration t = 0; t < duration; t += milliseconds(200)) {
      clock_.advance(milliseconds(200));
      client_a_.tick(clock_.now());
      client_b_.tick(clock_.now());
      server_.pump();
      client_a_.tick(clock_.now());
      client_b_.tick(clock_.now());
    }
    client_a_.flush(clock_.now());
    client_b_.flush(clock_.now());
    server_.pump();
    client_a_.tick(clock_.now());
    client_b_.tick(clock_.now());
  }

  VirtualClock clock_;
  MemFs local_a_;
  MemFs local_b_;
  Transport transport_a_;
  Transport transport_b_;
  CloudServer server_;
  DeltaCfsClient client_a_;
  DeltaCfsClient client_b_;
  InterceptingFs fs_a_;
  InterceptingFs fs_b_;
};

TEST_F(MultiClientTest, UpdatesForwardToPeer) {
  fs_a_.write_file("/sync/shared", to_bytes("from A"));
  settle();

  // B received the forwarded create+write and applied it locally.
  Result<Bytes> at_b = local_b_.read_file("/sync/shared");
  ASSERT_TRUE(at_b.is_ok());
  EXPECT_EQ(as_text(*at_b), "from A");
  EXPECT_GT(client_b_.forwards_applied(), 0u);
}

TEST_F(MultiClientTest, IncrementalForwardingNeedsNoRecomputation) {
  Rng rng(1);
  Bytes content = rng.bytes(200'000);
  fs_a_.write_file("/sync/doc", content);
  settle();
  ASSERT_EQ(*local_b_.read_file("/sync/doc"), content);

  // A makes a transactional update; the *delta* is forwarded to B, which
  // applies it against its own base copy.
  content[100'000] ^= 0x0F;
  fs_a_.rename("/sync/doc", "/sync/doc.bak");
  fs_a_.write_file("/sync/doc.tmp", content);
  fs_a_.rename("/sync/doc.tmp", "/sync/doc");
  fs_a_.unlink("/sync/doc.bak");
  settle();

  EXPECT_EQ(*local_b_.read_file("/sync/doc"), content);
  EXPECT_EQ(*server_.fetch("/sync/doc"), content);
}

TEST_F(MultiClientTest, RenameAndDeleteForward) {
  fs_a_.write_file("/sync/old", to_bytes("x"));
  settle();
  fs_a_.rename("/sync/old", "/sync/new");
  settle();
  EXPECT_FALSE(local_b_.exists("/sync/old"));
  EXPECT_TRUE(local_b_.exists("/sync/new"));

  fs_a_.unlink("/sync/new");
  settle();
  EXPECT_FALSE(local_b_.exists("/sync/new"));
}

TEST_F(MultiClientTest, ConcurrentEditsYieldFirstWriteWinsConflict) {
  fs_a_.write_file("/sync/f", to_bytes("base----"));
  settle();
  ASSERT_TRUE(local_b_.exists("/sync/f"));

  // Both clients edit the same base concurrently (neither has synced).
  {
    Result<FileHandle> ha = fs_a_.open("/sync/f");
    fs_a_.write(*ha, 0, to_bytes("AAAA"));
    fs_a_.close(*ha);
    Result<FileHandle> hb = fs_b_.open("/sync/f");
    fs_b_.write(*hb, 0, to_bytes("BBBB"));
    fs_b_.close(*hb);
  }
  settle();

  // One writer won the main file; the other produced a conflict copy.
  Result<Bytes> main = server_.fetch("/sync/f");
  ASSERT_TRUE(main.is_ok());
  const std::string text(as_text(*main));
  EXPECT_TRUE(text.starts_with("AAAA") || text.starts_with("BBBB"));
  EXPECT_EQ(server_.conflict_paths().size(), 1u);
  EXPECT_EQ(client_a_.conflicts_acked() + client_b_.conflicts_acked(), 1u);
}

// ---------------------------------------------------------------------------
// Reliability (Table IV) on the single-client stack with checksums on.
// ---------------------------------------------------------------------------

class ReliabilityTest : public ::testing::Test {
 protected:
  ReliabilityTest() {
    ClientConfig config;
    config.enable_checksums = true;
    system_ = std::make_unique<DeltaCfsSystem>(clock_, CostProfile::pc(),
                                               NetProfile::pc_wan(), config);
    system_->fs().mkdir("/sync");
  }

  void settle(Duration duration = seconds(12)) {
    for (Duration t = 0; t < duration; t += milliseconds(200)) {
      clock_.advance(milliseconds(200));
      system_->tick(clock_.now());
    }
    system_->finish(clock_.now());
  }

  VirtualClock clock_;
  std::unique_ptr<DeltaCfsSystem> system_;
};

TEST_F(ReliabilityTest, CorruptionDetectedOnRead) {
  Rng rng(2);
  const Bytes data = rng.bytes(64 * 1024);
  system_->fs().write_file("/sync/f", data);
  settle();

  // Silent bit flip, out of band (the paper's debugfs injection).
  ASSERT_TRUE(system_->local().corrupt_bit("/sync/f", 10'000, 2).is_ok());

  // Reading through the stack detects it and fails with EIO.
  Result<Bytes> read_back = system_->fs().read_file("/sync/f");
  EXPECT_EQ(read_back.code(), Errc::corruption);
  EXPECT_FALSE(system_->client().detected_corruption().empty());
}

TEST_F(ReliabilityTest, CorruptedDataIsNeverUploaded) {
  Rng rng(3);
  Bytes data = rng.bytes(64 * 1024);
  system_->fs().write_file("/sync/f", data);
  settle();
  const Bytes clean_cloud = *system_->server().fetch("/sync/f");

  ASSERT_TRUE(system_->local().corrupt_bit("/sync/f", 20'000, 1).is_ok());

  // Table IV scenario: write 1 byte to the corrupted file.  Dropbox and
  // Seafile would now upload the corrupted content; DeltaCFS detects the
  // damaged pre-image and quarantines the file.
  Result<FileHandle> handle = system_->fs().open("/sync/f");
  ASSERT_TRUE(handle.is_ok());
  system_->fs().write(*handle, 20'000, to_bytes("x"));
  system_->fs().close(*handle);
  settle();

  EXPECT_FALSE(system_->client().detected_corruption().empty());
  // The cloud copy is unchanged — damaged data never traveled.
  EXPECT_EQ(*system_->server().fetch("/sync/f"), clean_cloud);
}

TEST_F(ReliabilityTest, CrashInconsistencyFoundByScan) {
  Rng rng(4);
  system_->fs().write_file("/sync/f", rng.bytes(64 * 1024));
  settle();

  // Touch the file so it counts as recently modified, then simulate the
  // post-crash situation: data changed on disk, metadata/checksums not.
  Result<FileHandle> handle = system_->fs().open("/sync/f");
  system_->fs().write(*handle, 0, to_bytes("last write before crash"));
  system_->fs().close(*handle);
  ASSERT_TRUE(
      system_->local().write_bypassing("/sync/f", 4096, rng.bytes(512))
          .is_ok());

  const auto damaged = system_->client().crash_scan();
  ASSERT_EQ(damaged.size(), 1u);
  EXPECT_EQ(damaged[0], "/sync/f");
  EXPECT_TRUE(system_->client().quarantined().contains("/sync/f"));
}

TEST_F(ReliabilityTest, RecoveryFromCloudRestoresFile) {
  Rng rng(5);
  const Bytes data = rng.bytes(32 * 1024);
  system_->fs().write_file("/sync/f", data);
  settle();

  ASSERT_TRUE(system_->local().corrupt_bit("/sync/f", 5'000, 0).is_ok());
  EXPECT_EQ(system_->fs().read_file("/sync/f").code(), Errc::corruption);

  // Pull the clean copy from the cloud (the paper's recovery path).
  Result<Bytes> cloud_copy = system_->server().fetch("/sync/f");
  ASSERT_TRUE(cloud_copy.is_ok());
  ASSERT_TRUE(system_->client().recover_file("/sync/f", *cloud_copy).is_ok());

  Result<Bytes> healed = system_->fs().read_file("/sync/f");
  ASSERT_TRUE(healed.is_ok());
  EXPECT_EQ(*healed, data);
  EXPECT_FALSE(system_->client().quarantined().contains("/sync/f"));
}

TEST_F(ReliabilityTest, ChecksummedStackStillSyncsTransactionalUpdates) {
  Rng rng(6);
  Bytes content = rng.bytes(100'000);
  system_->fs().write_file("/sync/doc", content);
  settle();

  content[1'234] ^= 0xFF;
  system_->fs().rename("/sync/doc", "/sync/doc.t0");
  system_->fs().write_file("/sync/doc.t1", content);
  system_->fs().rename("/sync/doc.t1", "/sync/doc");
  system_->fs().unlink("/sync/doc.t0");
  settle();

  EXPECT_EQ(*system_->server().fetch("/sync/doc"), content);
  EXPECT_EQ(system_->client().deltas_triggered(), 1u);
  // Local reads verify clean.
  EXPECT_TRUE(system_->fs().read_file("/sync/doc").is_ok());
}

}  // namespace
}  // namespace dcfs
