#include <gtest/gtest.h>

#include "common/rng.h"
#include "vfs/intercept.h"
#include "vfs/memfs.h"
#include "vfs/path.h"

namespace dcfs {
namespace {

class MemFsTest : public ::testing::Test {
 protected:
  VirtualClock clock_;
  MemFs fs_{clock_};
};

// ---------------------------------------------------------------------------
// Paths
// ---------------------------------------------------------------------------

TEST(PathTest, Normalize) {
  EXPECT_EQ(path::normalize(""), "/");
  EXPECT_EQ(path::normalize("/"), "/");
  EXPECT_EQ(path::normalize("a/b"), "/a/b");
  EXPECT_EQ(path::normalize("//a///b/"), "/a/b");
  EXPECT_EQ(path::normalize("/a/./b"), "/a/b");
  EXPECT_EQ(path::normalize("/a/../b"), "/b");
  EXPECT_EQ(path::normalize("/../a"), "/a");
}

TEST(PathTest, DirnameBasename) {
  EXPECT_EQ(path::dirname("/a/b/c"), "/a/b");
  EXPECT_EQ(path::dirname("/a"), "/");
  EXPECT_EQ(path::basename("/a/b"), "b");
  EXPECT_EQ(path::basename("/"), "");
  EXPECT_EQ(path::join("/a", "b"), "/a/b");
  EXPECT_EQ(path::join("/", "b"), "/b");
}

TEST(PathTest, IsWithin) {
  EXPECT_TRUE(path::is_within("/sync/a", "/sync"));
  EXPECT_TRUE(path::is_within("/sync", "/sync"));
  EXPECT_TRUE(path::is_within("/anything", "/"));
  EXPECT_FALSE(path::is_within("/synced/a", "/sync"));
  EXPECT_FALSE(path::is_within("/other", "/sync"));
}

// ---------------------------------------------------------------------------
// MemFs basics
// ---------------------------------------------------------------------------

TEST_F(MemFsTest, CreateWriteReadRoundTrip) {
  Result<FileHandle> handle = fs_.create("/f");
  ASSERT_TRUE(handle.is_ok());
  EXPECT_TRUE(fs_.write(*handle, 0, to_bytes("hello")).is_ok());
  Result<Bytes> data = fs_.read(*handle, 0, 100);
  ASSERT_TRUE(data.is_ok());
  EXPECT_EQ(as_text(*data), "hello");
  EXPECT_TRUE(fs_.close(*handle).is_ok());
}

TEST_F(MemFsTest, CreateFailsIfExists) {
  fs_.write_file("/f", to_bytes("x"));
  Result<FileHandle> handle = fs_.create("/f");
  EXPECT_EQ(handle.code(), Errc::already_exists);
}

TEST_F(MemFsTest, OpenMissingFails) {
  EXPECT_EQ(fs_.open("/nope").code(), Errc::not_found);
}

TEST_F(MemFsTest, CreateInMissingParentFails) {
  EXPECT_EQ(fs_.create("/no/dir/f").code(), Errc::not_found);
}

TEST_F(MemFsTest, SparseWritesZeroFill) {
  Result<FileHandle> handle = fs_.create("/f");
  ASSERT_TRUE(handle.is_ok());
  fs_.write(*handle, 10, to_bytes("end"));
  Result<Bytes> data = fs_.read(*handle, 0, 13);
  ASSERT_TRUE(data.is_ok());
  ASSERT_EQ(data->size(), 13u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ((*data)[i], 0);
  EXPECT_EQ(as_text(ByteSpan{data->data() + 10, 3}), "end");
  fs_.close(*handle);
}

TEST_F(MemFsTest, ReadPastEofIsShort) {
  fs_.write_file("/f", to_bytes("abc"));
  Result<FileHandle> handle = fs_.open("/f");
  ASSERT_TRUE(handle.is_ok());
  EXPECT_EQ(fs_.read(*handle, 2, 10)->size(), 1u);
  EXPECT_TRUE(fs_.read(*handle, 5, 10)->empty());
  fs_.close(*handle);
}

TEST_F(MemFsTest, TruncateShrinkAndGrow) {
  fs_.write_file("/f", to_bytes("abcdef"));
  EXPECT_TRUE(fs_.truncate("/f", 3).is_ok());
  EXPECT_EQ(fs_.stat("/f")->size, 3u);
  EXPECT_TRUE(fs_.truncate("/f", 8).is_ok());
  Result<Bytes> data = fs_.read_file("/f");
  ASSERT_TRUE(data.is_ok());
  EXPECT_EQ(data->size(), 8u);
  EXPECT_EQ((*data)[5], 0);
}

TEST_F(MemFsTest, MkdirRmdirListDir) {
  EXPECT_TRUE(fs_.mkdir("/d").is_ok());
  EXPECT_EQ(fs_.mkdir("/d").code(), Errc::already_exists);
  fs_.write_file("/d/a", to_bytes("1"));
  fs_.write_file("/d/b", to_bytes("2"));
  Result<std::vector<std::string>> names = fs_.list_dir("/d");
  ASSERT_TRUE(names.is_ok());
  EXPECT_EQ(*names, (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(fs_.rmdir("/d").code(), Errc::not_empty);
  fs_.unlink("/d/a");
  fs_.unlink("/d/b");
  EXPECT_TRUE(fs_.rmdir("/d").is_ok());
  EXPECT_FALSE(fs_.exists("/d"));
}

TEST_F(MemFsTest, RenameMovesContent) {
  fs_.write_file("/a", to_bytes("data"));
  EXPECT_TRUE(fs_.rename("/a", "/b").is_ok());
  EXPECT_FALSE(fs_.exists("/a"));
  EXPECT_EQ(as_text(*fs_.read_file("/b")), "data");
}

TEST_F(MemFsTest, RenameReplacesExisting) {
  fs_.write_file("/a", to_bytes("new"));
  fs_.write_file("/b", to_bytes("old"));
  EXPECT_TRUE(fs_.rename("/a", "/b").is_ok());
  EXPECT_EQ(as_text(*fs_.read_file("/b")), "new");
  EXPECT_FALSE(fs_.exists("/a"));
}

TEST_F(MemFsTest, HardLinkSharesContentUntilUnlink) {
  fs_.write_file("/f", to_bytes("shared"));
  EXPECT_TRUE(fs_.link("/f", "/f2").is_ok());
  EXPECT_EQ(fs_.stat("/f")->nlink, 2u);
  EXPECT_EQ(fs_.stat("/f")->inode, fs_.stat("/f2")->inode);

  // Writing through one name is visible through the other.
  Result<FileHandle> handle = fs_.open("/f");
  fs_.write(*handle, 0, to_bytes("SHARED"));
  fs_.close(*handle);
  EXPECT_EQ(as_text(*fs_.read_file("/f2")), "SHARED");

  EXPECT_TRUE(fs_.unlink("/f").is_ok());
  EXPECT_EQ(as_text(*fs_.read_file("/f2")), "SHARED");
  EXPECT_EQ(fs_.stat("/f2")->nlink, 1u);
}

TEST_F(MemFsTest, UnlinkedOpenFileStaysReadable) {
  fs_.write_file("/f", to_bytes("ghost"));
  Result<FileHandle> handle = fs_.open("/f");
  ASSERT_TRUE(handle.is_ok());
  EXPECT_TRUE(fs_.unlink("/f").is_ok());
  EXPECT_FALSE(fs_.exists("/f"));
  EXPECT_EQ(as_text(*fs_.read(*handle, 0, 5)), "ghost");
  fs_.close(*handle);
  EXPECT_EQ(fs_.open_handle_count(), 0u);
}

TEST_F(MemFsTest, CapacityEnforced) {
  MemFs small(clock_, 100);
  Result<FileHandle> handle = small.create("/f");
  ASSERT_TRUE(handle.is_ok());
  EXPECT_TRUE(small.write(*handle, 0, Bytes(80, 'x')).is_ok());
  EXPECT_EQ(small.write(*handle, 80, Bytes(40, 'y')).code(), Errc::no_space);
  // Overwrites need no new space.
  EXPECT_TRUE(small.write(*handle, 0, Bytes(80, 'z')).is_ok());
  small.close(*handle);
  EXPECT_EQ(small.used_bytes(), 80u);
}

TEST_F(MemFsTest, UsedBytesTracksLifecycle) {
  fs_.write_file("/f", Bytes(1000, 'a'));
  EXPECT_EQ(fs_.used_bytes(), 1000u);
  fs_.truncate("/f", 400);
  EXPECT_EQ(fs_.used_bytes(), 400u);
  fs_.unlink("/f");
  EXPECT_EQ(fs_.used_bytes(), 0u);
}

TEST_F(MemFsTest, MtimeFollowsClock) {
  clock_.advance(seconds(5));
  fs_.write_file("/f", to_bytes("x"));
  EXPECT_EQ(fs_.stat("/f")->mtime, seconds(5));
}

// ---------------------------------------------------------------------------
// Watcher events (the inotify substitute)
// ---------------------------------------------------------------------------

TEST_F(MemFsTest, WatcherSeesLifecycleEvents) {
  std::vector<FsEvent> events;
  fs_.mkdir("/sync");
  fs_.watch("/sync", [&](const FsEvent& e) { events.push_back(e); });

  fs_.write_file("/sync/f", to_bytes("abc"));   // created+modified+closed
  fs_.rename("/sync/f", "/sync/g");
  fs_.unlink("/sync/g");

  ASSERT_GE(events.size(), 4u);
  EXPECT_EQ(events.front().kind, FsEvent::Kind::created);
  EXPECT_EQ(events.front().path, "/sync/f");
  bool saw_rename = false;
  bool saw_remove = false;
  for (const FsEvent& e : events) {
    if (e.kind == FsEvent::Kind::renamed) {
      saw_rename = true;
      EXPECT_EQ(e.path, "/sync/f");
      EXPECT_EQ(e.dst_path, "/sync/g");
    }
    if (e.kind == FsEvent::Kind::removed) saw_remove = true;
  }
  EXPECT_TRUE(saw_rename);
  EXPECT_TRUE(saw_remove);
}

TEST_F(MemFsTest, WatcherScopeIsRespected) {
  std::vector<FsEvent> events;
  fs_.mkdir("/sync");
  fs_.mkdir("/other");
  const std::uint64_t id =
      fs_.watch("/sync", [&](const FsEvent& e) { events.push_back(e); });

  fs_.write_file("/other/f", to_bytes("x"));
  EXPECT_TRUE(events.empty());

  fs_.write_file("/sync/f", to_bytes("x"));
  EXPECT_FALSE(events.empty());

  events.clear();
  fs_.unwatch(id);
  fs_.write_file("/sync/g", to_bytes("x"));
  EXPECT_TRUE(events.empty());
}

TEST_F(MemFsTest, FaultInjectionBypassesWatchers) {
  std::vector<FsEvent> events;
  fs_.write_file("/f", Bytes(100, 'a'));
  fs_.watch("/", [&](const FsEvent& e) { events.push_back(e); });

  EXPECT_TRUE(fs_.corrupt_bit("/f", 10, 3).is_ok());
  EXPECT_TRUE(fs_.write_bypassing("/f", 0, to_bytes("zz")).is_ok());
  EXPECT_TRUE(events.empty());

  Result<Bytes> data = fs_.read_file("/f");
  EXPECT_EQ((*data)[0], 'z');
  EXPECT_EQ((*data)[10], 'a' ^ (1 << 3));
}

// ---------------------------------------------------------------------------
// InterceptingFs
// ---------------------------------------------------------------------------

struct RecordingSink final : OpSink {
  std::vector<std::string> log;
  Bytes last_overwritten;
  std::uint64_t last_size_before = 0;
  Bytes last_cut_tail;
  bool preserve_unlinks = false;
  FileSystem* local = nullptr;
  Status read_verdict = Status::ok();

  void note_create(std::string_view path) override {
    log.push_back("create " + std::string(path));
  }
  void note_write(std::string_view path, std::uint64_t offset, ByteSpan data,
                  ByteSpan overwritten, std::uint64_t size_before) override {
    log.push_back("write " + std::string(path) + "@" +
                  std::to_string(offset) + "+" + std::to_string(data.size()));
    last_overwritten.assign(overwritten.begin(), overwritten.end());
    last_size_before = size_before;
  }
  void note_truncate(std::string_view path, std::uint64_t new_size,
                     std::uint64_t, ByteSpan cut_tail) override {
    log.push_back("truncate " + std::string(path) + "=" +
                  std::to_string(new_size));
    last_cut_tail.assign(cut_tail.begin(), cut_tail.end());
  }
  void note_close(std::string_view path, bool wrote) override {
    log.push_back("close " + std::string(path) + (wrote ? " w" : ""));
  }
  void before_rename(std::string_view, std::string_view to,
                     bool dst_exists) override {
    if (dst_exists) log.push_back("stash " + std::string(to));
  }
  void note_rename(std::string_view from, std::string_view to,
                   bool dst_existed) override {
    log.push_back("rename " + std::string(from) + "->" + std::string(to) +
                  (dst_existed ? " replace" : ""));
  }
  void note_link(std::string_view from, std::string_view to) override {
    log.push_back("link " + std::string(from) + "->" + std::string(to));
  }
  bool intercept_unlink(std::string_view path) override {
    if (!preserve_unlinks) return false;
    return local->rename(path, std::string(path) + ".saved").is_ok();
  }
  void note_unlink(std::string_view path) override {
    log.push_back("unlink " + std::string(path));
  }
  Status verify_read(std::string_view, std::uint64_t, ByteSpan) override {
    return read_verdict;
  }
};

class InterceptTest : public ::testing::Test {
 protected:
  InterceptTest() : fs_(clock_), sink_(), ifs_(fs_, sink_) {
    sink_.local = &fs_;
  }
  VirtualClock clock_;
  MemFs fs_;
  RecordingSink sink_;
  InterceptingFs ifs_;
};

TEST_F(InterceptTest, NotesLifecycle) {
  Result<FileHandle> handle = ifs_.create("/f");
  ASSERT_TRUE(handle.is_ok());
  ifs_.write(*handle, 0, to_bytes("abc"));
  ifs_.close(*handle);
  ifs_.rename("/f", "/g");
  ifs_.unlink("/g");

  ASSERT_EQ(sink_.log.size(), 5u);
  EXPECT_EQ(sink_.log[0], "create /f");
  EXPECT_EQ(sink_.log[1], "write /f@0+3");
  EXPECT_EQ(sink_.log[2], "close /f w");
  EXPECT_EQ(sink_.log[3], "rename /f->/g");
  EXPECT_EQ(sink_.log[4], "unlink /g");
}

TEST_F(InterceptTest, CapturesOverwrittenBytesAndSize) {
  ifs_.write_file("/f", to_bytes("abcdef"));
  Result<FileHandle> handle = ifs_.open("/f");
  ifs_.write(*handle, 2, to_bytes("XYZW"));
  ifs_.close(*handle);
  EXPECT_EQ(as_text(sink_.last_overwritten), "cdef");
  EXPECT_EQ(sink_.last_size_before, 6u);

  // Extending write: only the existing suffix is "overwritten".
  handle = ifs_.open("/f");
  ifs_.write(*handle, 5, to_bytes("123"));
  ifs_.close(*handle);
  EXPECT_EQ(sink_.last_overwritten.size(), 1u);
  EXPECT_EQ(sink_.last_size_before, 6u);
}

TEST_F(InterceptTest, CapturesTruncatedTail) {
  ifs_.write_file("/f", to_bytes("abcdef"));
  ifs_.truncate("/f", 2);
  EXPECT_EQ(as_text(sink_.last_cut_tail), "cdef");
}

TEST_F(InterceptTest, StashCalledOnReplacingRename) {
  ifs_.write_file("/a", to_bytes("1"));
  ifs_.write_file("/b", to_bytes("2"));
  sink_.log.clear();
  ifs_.rename("/a", "/b");
  ASSERT_EQ(sink_.log.size(), 2u);
  EXPECT_EQ(sink_.log[0], "stash /b");
  EXPECT_EQ(sink_.log[1], "rename /a->/b replace");
}

TEST_F(InterceptTest, UnlinkPreservationSkipsRealUnlink) {
  ifs_.write_file("/f", to_bytes("keep"));
  sink_.preserve_unlinks = true;
  EXPECT_TRUE(ifs_.unlink("/f").is_ok());
  EXPECT_FALSE(fs_.exists("/f"));               // app sees it gone
  EXPECT_TRUE(fs_.exists("/f.saved"));          // but it was preserved
  EXPECT_EQ(as_text(*fs_.read_file("/f.saved")), "keep");
}

TEST_F(InterceptTest, ReadVerdictFailsRead) {
  ifs_.write_file("/f", to_bytes("data"));
  sink_.read_verdict = Status{Errc::corruption, "bad block"};
  Result<FileHandle> handle = ifs_.open("/f");
  Result<Bytes> data = ifs_.read(*handle, 0, 4);
  EXPECT_EQ(data.code(), Errc::corruption);
  ifs_.close(*handle);
}

TEST_F(InterceptTest, FailedOpsAreNotReported) {
  EXPECT_FALSE(ifs_.open("/missing").is_ok());
  EXPECT_FALSE(ifs_.rename("/missing", "/x").is_ok());
  EXPECT_FALSE(ifs_.unlink("/missing").is_ok());
  EXPECT_TRUE(sink_.log.empty());
}

}  // namespace
}  // namespace dcfs
