// Property tests: the dcfs::par kernels must be *observationally identical*
// to their serial rsyncx counterparts at every thread count — same signature
// contents, same delta wire bytes, same CostMeter totals — so flipping
// `delta_threads` can never change what a client uploads or what it reports
// having spent.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "baselines/deltacfs_system.h"
#include "common/rng.h"
#include "core/checksum_store.h"
#include "metrics/cost.h"
#include "par/parallel_delta.h"
#include "par/worker_pool.h"
#include "rsyncx/delta.h"
#include "vfs/memfs.h"

namespace dcfs {
namespace {

using par::WorkerPool;

/// Every test asserts on all of these thread counts; 1 means no pool at all.
const std::size_t kThreadCounts[] = {1, 2, 4, 8};

std::unique_ptr<WorkerPool> make_pool(std::size_t threads) {
  return threads > 1 ? std::make_unique<WorkerPool>(threads) : nullptr;
}

void expect_same_meter(const CostMeter& got, const CostMeter& want,
                       const std::string& label) {
  const CostSnapshot g = got.snapshot();
  const CostSnapshot w = want.snapshot();
  for (std::size_t i = 0; i < kCostKindCount; ++i) {
    EXPECT_EQ(g.units_by_kind[i], w.units_by_kind[i])
        << label << ": kind " << to_string(static_cast<CostKind>(i));
  }
  EXPECT_EQ(g.total_units, w.total_units) << label;
}

/// A base/target pair exercising one editing pattern.
struct Case {
  std::string name;
  Bytes base;
  Bytes target;
};

std::vector<Case> make_cases(std::uint32_t block_size) {
  Rng rng(7);
  std::vector<Case> cases;
  // Enough blocks that the parallel kernels actually engage
  // (kMinParallelBlocks regions of kRegionBlocks blocks each).
  const std::size_t bulk = (par::kMinParallelBlocks + 70) * block_size + 123;

  {
    Bytes base = rng.bytes(bulk);
    cases.push_back({"identical", base, base});
  }
  {
    Bytes base = rng.bytes(bulk);
    Bytes target = base;
    const Bytes inserted = rng.bytes(block_size / 2 + 17);
    target.insert(target.begin() + static_cast<std::ptrdiff_t>(bulk / 3),
                  inserted.begin(), inserted.end());
    cases.push_back({"insertion", std::move(base), std::move(target)});
  }
  {
    Bytes base = rng.bytes(bulk);
    Bytes target = base;
    // Rewrite scattered single bytes: lots of short literals between
    // matches, so regions see jump and roll exits alike.
    for (std::size_t offset = block_size / 2; offset < target.size();
         offset += 11 * block_size + 3) {
      target[offset] ^= 0x5a;
    }
    cases.push_back({"scattered_edits", std::move(base), std::move(target)});
  }
  {
    Bytes base = rng.bytes(bulk);
    Bytes target = rng.bytes(bulk + 4 * block_size);
    cases.push_back({"unrelated", std::move(base), std::move(target)});
  }
  {
    Bytes base = rng.bytes(bulk);
    Bytes target = base;
    const Bytes tail = rng.bytes(3 * block_size + 1);
    target.insert(target.end(), tail.begin(), tail.end());
    cases.push_back({"append", std::move(base), std::move(target)});
  }
  {
    // Deliberately below the parallel threshold: must hit the serial
    // fallback and still agree.
    Bytes base = rng.bytes(5 * block_size + 1);
    Bytes target = base;
    target[block_size + 2] ^= 0xff;
    cases.push_back({"small", std::move(base), std::move(target)});
  }
  return cases;
}

class ParEquivalenceTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ParEquivalenceTest, SignatureMatchesSerial) {
  const std::uint32_t bs = GetParam();
  for (const Case& c : make_cases(bs)) {
    for (const bool with_strong : {false, true}) {
      CostMeter serial_meter(CostProfile::pc());
      const rsyncx::Signature want =
          rsyncx::compute_signature(c.base, bs, with_strong, &serial_meter);
      for (const std::size_t threads : kThreadCounts) {
        const auto pool = make_pool(threads);
        CostMeter meter(CostProfile::pc());
        const rsyncx::Signature got = par::compute_signature(
            pool.get(), c.base, bs, with_strong, &meter);
        const std::string label = c.name + " strong=" +
                                  std::to_string(with_strong) + " threads=" +
                                  std::to_string(threads);
        EXPECT_EQ(got.file_size, want.file_size) << label;
        EXPECT_EQ(got.block_size, want.block_size) << label;
        EXPECT_EQ(got.weak, want.weak) << label;
        EXPECT_EQ(got.strong, want.strong) << label;
        expect_same_meter(meter, serial_meter, label);
      }
    }
  }
}

TEST_P(ParEquivalenceTest, LocalDeltaMatchesSerialByteForByte) {
  const std::uint32_t bs = GetParam();
  for (const Case& c : make_cases(bs)) {
    CostMeter serial_meter(CostProfile::pc());
    const Bytes want = rsyncx::encode_delta(
        rsyncx::compute_delta_local(c.base, c.target, bs, &serial_meter));
    for (const std::size_t threads : kThreadCounts) {
      const auto pool = make_pool(threads);
      CostMeter meter(CostProfile::pc());
      const Bytes got = rsyncx::encode_delta(par::compute_delta_local(
          pool.get(), c.base, c.target, bs, &meter));
      const std::string label = c.name + " threads=" + std::to_string(threads);
      EXPECT_EQ(got, want) << label;
      expect_same_meter(meter, serial_meter, label);
    }
  }
}

TEST_P(ParEquivalenceTest, RemoteDeltaMatchesSerialByteForByte) {
  const std::uint32_t bs = GetParam();
  for (const Case& c : make_cases(bs)) {
    const rsyncx::Signature signature =
        rsyncx::compute_signature(c.base, bs, /*with_strong=*/true, nullptr);
    CostMeter serial_meter(CostProfile::pc());
    const Bytes want = rsyncx::encode_delta(
        rsyncx::compute_delta(signature, c.target, &serial_meter));
    for (const std::size_t threads : kThreadCounts) {
      const auto pool = make_pool(threads);
      CostMeter meter(CostProfile::pc());
      const Bytes got = rsyncx::encode_delta(
          par::compute_delta(pool.get(), signature, c.target, &meter));
      const std::string label = c.name + " threads=" + std::to_string(threads);
      EXPECT_EQ(got, want) << label;
      expect_same_meter(meter, serial_meter, label);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(BlockSizes, ParEquivalenceTest,
                         ::testing::Values(512u, 1024u, 4096u));

TEST(AdvanceSignatureTest, MatchesRecomputedSignatureOfTarget) {
  const std::uint32_t bs = 512;
  for (const Case& c : make_cases(bs)) {
    for (const bool with_strong : {false, true}) {
      const rsyncx::Signature base_sig =
          rsyncx::compute_signature(c.base, bs, with_strong, nullptr);
      const rsyncx::Delta delta = with_strong
          ? rsyncx::compute_delta(base_sig, c.target, nullptr)
          : rsyncx::compute_delta_local(c.base, c.target, bs, nullptr);
      CostMeter meter(CostProfile::pc());
      const rsyncx::Signature advanced =
          rsyncx::advance_signature(base_sig, delta, c.target, &meter);
      const rsyncx::Signature want =
          rsyncx::compute_signature(c.target, bs, with_strong, nullptr);
      const std::string label = c.name + " strong=" +
                                std::to_string(with_strong);
      EXPECT_EQ(advanced.file_size, want.file_size) << label;
      EXPECT_EQ(advanced.weak, want.weak) << label;
      EXPECT_EQ(advanced.strong, want.strong) << label;
    }
  }
}

TEST(AdvanceSignatureTest, ReusedBlocksAreNotRecharged) {
  const std::uint32_t bs = 512;
  Rng rng(9);
  const Bytes base = rng.bytes(400 * bs);
  Bytes target = base;
  target[17] ^= 1;  // only the first block changes

  const rsyncx::Signature base_sig =
      rsyncx::compute_signature(base, bs, /*with_strong=*/false, nullptr);
  const rsyncx::Delta delta =
      rsyncx::compute_delta_local(base, target, bs, nullptr);

  CostMeter advance_meter(CostProfile::pc());
  rsyncx::advance_signature(base_sig, delta, target, &advance_meter);
  CostMeter full_meter(CostProfile::pc());
  rsyncx::compute_signature(target, bs, /*with_strong=*/false, &full_meter);
  // Advancing re-hashes only the rewritten prefix, a small fraction of the
  // full pass.
  EXPECT_LT(advance_meter.units() * 10, full_meter.units());
}

TEST(ChecksumStoreBulkTest, BulkIndexMatchesSerialStateAndCharges) {
  VirtualClock clock;
  MemFs fs(clock);
  Rng rng(11);
  const Bytes data = rng.bytes(300'000);  // 74 blocks at 4096: bulk engages
  ASSERT_TRUE(fs.write_file("/f", data).is_ok());

  const auto dump = [](KvStore& kv) {
    std::map<std::string, Bytes> out;
    kv.scan_prefix("", [&](std::string_view key, ByteSpan value) {
      out.emplace(std::string(key), Bytes(value.begin(), value.end()));
    });
    return out;
  };

  CostMeter serial_meter(CostProfile::pc());
  auto serial_kv = std::make_shared<KvStore>(
      std::make_shared<MemoryWalStorage>());
  ChecksumStore serial_store(serial_kv, 4096, &serial_meter);
  ASSERT_TRUE(serial_store.index_file(fs, "/f").is_ok());

  for (const std::size_t threads : kThreadCounts) {
    const auto pool = make_pool(threads);
    CostMeter meter(CostProfile::pc());
    auto kv = std::make_shared<KvStore>(std::make_shared<MemoryWalStorage>());
    ChecksumStore store(kv, 4096, &meter);
    store.set_pool(pool.get());
    ASSERT_TRUE(store.index_file(fs, "/f").is_ok());

    const std::string label = "threads=" + std::to_string(threads);
    EXPECT_EQ(dump(*kv), dump(*serial_kv)) << label;
    expect_same_meter(meter, serial_meter, label);
  }
}

/// End-to-end determinism: two full DeltaCFS stacks differing only in
/// `delta_threads` must produce identical cloud state, traffic and client
/// CPU accounting.
TEST(ClientParallelEquivalenceTest, ThreadCountDoesNotChangeObservables) {
  const auto run = [](std::uint32_t threads) {
    VirtualClock clock;
    ClientConfig config;
    config.delta_block_size = 512;
    config.delta_threads = threads;
    DeltaCfsSystem system(clock, CostProfile::pc(), NetProfile::pc_wan(),
                          config);
    system.fs().mkdir("/sync");

    Rng rng(13);
    Bytes content = rng.bytes(400'000);
    EXPECT_TRUE(system.fs().write_file("/sync/doc", content).is_ok());
    const auto drain = [&] {
      for (int i = 0; i < 50; ++i) {
        clock.advance(milliseconds(200));
        system.tick(clock.now());
      }
      system.finish(clock.now());
    };
    drain();

    // Transactional rewrite (vim flow): delta against the synced version.
    content.insert(content.begin() + 200'000, 42);
    EXPECT_TRUE(system.fs().rename("/sync/doc", "/sync/doc~").is_ok());
    EXPECT_TRUE(system.fs().write_file("/sync/doc", content).is_ok());
    EXPECT_TRUE(system.fs().unlink("/sync/doc~").is_ok());
    drain();

    Result<Bytes> cloud = system.server().fetch("/sync/doc");
    EXPECT_TRUE(cloud.is_ok());
    return std::tuple{cloud.is_ok() ? *cloud : Bytes{},
                      system.traffic().up_bytes(),
                      system.client().meter().snapshot().total_units};
  };

  const auto [cloud1, up1, units1] = run(1);
  for (const std::uint32_t threads : {2u, 4u, 8u}) {
    const auto [cloud, up, units] = run(threads);
    const std::string label = "threads=" + std::to_string(threads);
    EXPECT_EQ(cloud, cloud1) << label;
    EXPECT_EQ(up, up1) << label;
    EXPECT_EQ(units, units1) << label;
  }
}

}  // namespace
}  // namespace dcfs
