#include <gtest/gtest.h>

#include "common/bytes.h"
#include "common/checksum.h"
#include "common/clock.h"
#include "common/md5.h"
#include "common/rng.h"
#include "common/status.h"

namespace dcfs {
namespace {

// ---------------------------------------------------------------------------
// Status / Result
// ---------------------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.is_ok());
  EXPECT_EQ(status.code(), Errc::ok);
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status{Errc::not_found, "no such file"};
  EXPECT_FALSE(status.is_ok());
  EXPECT_EQ(status.code(), Errc::not_found);
  EXPECT_EQ(status.to_string(), "not_found: no such file");
}

TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(*result, 42);
  EXPECT_EQ(result.value_or(-1), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> result(Errc::no_space);
  EXPECT_FALSE(result.is_ok());
  EXPECT_EQ(result.code(), Errc::no_space);
  EXPECT_EQ(result.value_or(-1), -1);
}

TEST(ResultTest, AccessingErrorThrowsLogicError) {
  Result<int> result(Errc::io_error);
  EXPECT_THROW(result.value(), BadResultAccess);
}

TEST(ResultTest, ConstructingFromOkStatusThrows) {
  EXPECT_THROW(Result<int>{Status::ok()}, std::logic_error);
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int code = 0; code <= static_cast<int>(Errc::unavailable); ++code) {
    EXPECT_NE(to_string(static_cast<Errc>(code)), "unknown");
  }
}

// ---------------------------------------------------------------------------
// MD5 (RFC 1321 test vectors)
// ---------------------------------------------------------------------------

TEST(Md5Test, Rfc1321Vectors) {
  EXPECT_EQ(Md5::hex(to_bytes("")), "d41d8cd98f00b204e9800998ecf8427e");
  EXPECT_EQ(Md5::hex(to_bytes("a")), "0cc175b9c0f1b6a831c399e269772661");
  EXPECT_EQ(Md5::hex(to_bytes("abc")), "900150983cd24fb0d6963f7d28e17f72");
  EXPECT_EQ(Md5::hex(to_bytes("message digest")),
            "f96b697d7cb7938d525a2f31aaf161d0");
  EXPECT_EQ(Md5::hex(to_bytes("abcdefghijklmnopqrstuvwxyz")),
            "c3fcd3d76192e4007dfb496cca67e13b");
  EXPECT_EQ(
      Md5::hex(to_bytes("ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz"
                        "0123456789")),
      "d174ab98d277d9f5a5611c2c9f419d9f");
  EXPECT_EQ(
      Md5::hex(to_bytes("1234567890123456789012345678901234567890123456789012"
                        "3456789012345678901234567890")),
      "57edf4a22be3c955ac49da2e2107b67a");
}

TEST(Md5Test, IncrementalMatchesOneShot) {
  Rng rng(99);
  const Bytes data = rng.bytes(10'000);

  Md5 incremental;
  std::size_t pos = 0;
  std::size_t chunk = 1;
  while (pos < data.size()) {
    const std::size_t n = std::min(chunk, data.size() - pos);
    incremental.update(ByteSpan{data.data() + pos, n});
    pos += n;
    chunk = chunk * 3 + 1;  // uneven chunking stresses buffering
  }
  EXPECT_EQ(incremental.finalize(), Md5::hash(data));
}

// ---------------------------------------------------------------------------
// Rolling checksum
// ---------------------------------------------------------------------------

TEST(RollingChecksumTest, RollMatchesRecompute) {
  Rng rng(7);
  const Bytes data = rng.bytes(4096);
  constexpr std::size_t kWindow = 512;

  RollingChecksum rolling(ByteSpan{data.data(), kWindow});
  for (std::size_t pos = 0; pos + kWindow < data.size(); ++pos) {
    RollingChecksum fresh(ByteSpan{data.data() + pos, kWindow});
    ASSERT_EQ(rolling.digest(), fresh.digest()) << "at offset " << pos;
    rolling.roll(data[pos], data[pos + kWindow]);
  }
}

TEST(RollingChecksumTest, DifferentContentDiffers) {
  const Bytes a = to_bytes("the quick brown fox jumps over the dog");
  Bytes b = a;
  b[5] ^= 0x01;
  EXPECT_NE(weak_checksum(a), weak_checksum(b));
}

TEST(RollingChecksumTest, EmptyWindowIsZero) {
  EXPECT_EQ(weak_checksum({}), 0u);
}

// ---------------------------------------------------------------------------
// CRC32
// ---------------------------------------------------------------------------

TEST(Crc32Test, KnownVector) {
  // CRC-32/IEEE of "123456789" is 0xCBF43926.
  EXPECT_EQ(crc32(to_bytes("123456789")), 0xCBF43926u);
}

TEST(Crc32Test, DetectsBitFlip) {
  Rng rng(3);
  Bytes data = rng.bytes(1024);
  const std::uint32_t before = crc32(data);
  data[500] ^= 0x10;
  EXPECT_NE(crc32(data), before);
}

// ---------------------------------------------------------------------------
// Bytes helpers
// ---------------------------------------------------------------------------

TEST(BytesTest, HexEncode) {
  const Bytes data{0x00, 0xff, 0x10, 0xab};
  EXPECT_EQ(hex_encode(data), "00ff10ab");
}

TEST(BytesTest, U32U64RoundTrip) {
  Bytes buffer;
  put_u32(buffer, 0xDEADBEEFu);
  put_u64(buffer, 0x0123456789ABCDEFull);
  EXPECT_EQ(get_u32(buffer, 0), 0xDEADBEEFu);
  EXPECT_EQ(get_u64(buffer, 4), 0x0123456789ABCDEFull);
}

TEST(BytesTest, Fnv1aStable) {
  EXPECT_EQ(fnv1a(std::string_view("hello")), fnv1a(std::string_view("hello")));
  EXPECT_NE(fnv1a(std::string_view("hello")), fnv1a(std::string_view("hellp")));
}

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(RngTest, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, BoundsRespected) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
    const std::uint64_t v = rng.next_in(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, FillProducesRequestedLength) {
  Rng rng(6);
  for (std::size_t n : {0u, 1u, 7u, 8u, 9u, 1000u}) {
    EXPECT_EQ(rng.bytes(n).size(), n);
    EXPECT_EQ(rng.text(n).size(), n);
  }
}

// ---------------------------------------------------------------------------
// Clock
// ---------------------------------------------------------------------------

TEST(ClockTest, VirtualClockAdvances) {
  VirtualClock clock;
  EXPECT_EQ(clock.now(), 0);
  clock.advance(seconds(2));
  EXPECT_EQ(clock.now(), 2'000'000);
  clock.advance_to(seconds(1));  // never goes backwards
  EXPECT_EQ(clock.now(), 2'000'000);
  clock.advance(-5);  // negative deltas ignored
  EXPECT_EQ(clock.now(), 2'000'000);
}

TEST(ClockTest, DurationHelpers) {
  EXPECT_EQ(milliseconds(1500), 1'500'000);
  EXPECT_EQ(seconds(3), 3'000'000);
  EXPECT_EQ(microseconds(9), 9);
}

}  // namespace
}  // namespace dcfs
