// Content correctness for the baseline systems: whatever their traffic/CPU
// profiles, every sync solution must faithfully mirror the client's files.
// (For DeltaCFS this is covered by the e2e property suite; here the
// baselines get the same bar under the canonical workloads.)
#include <gtest/gtest.h>

#include "baselines/dropbox_sim.h"
#include "common/rng.h"
#include "baselines/nfs_sim.h"
#include "baselines/seafile_sim.h"
#include "trace/workloads.h"

namespace dcfs {
namespace {

TEST(NfsCorrectnessTest, WordWorkloadMirrorsExactly) {
  VirtualClock clock;
  NfsSim nfs(clock, CostProfile::pc());
  nfs.fs().mkdir("/sync");
  WordParams params = WordParams::scaled();
  params.saves = 5;
  params.initial_bytes = 300'000;
  params.final_bytes = 360'000;
  WordWorkload workload(params);
  run_workload(workload, nfs, clock);

  const Bytes local = *nfs.fs().read_file(params.doc);
  Result<Bytes> server = nfs.server_content(params.doc);
  ASSERT_TRUE(server.is_ok());
  EXPECT_EQ(*server, local);
}

TEST(NfsCorrectnessTest, WeChatWorkloadMirrorsExactly) {
  VirtualClock clock;
  NfsSim nfs(clock, CostProfile::pc());
  nfs.fs().mkdir("/sync");
  WeChatParams params = WeChatParams::scaled();
  params.updates = 6;
  params.initial_bytes = 1 << 20;
  params.final_bytes = (1 << 20) + 64 * 1024;
  WeChatWorkload workload(params);
  run_workload(workload, nfs, clock);

  EXPECT_EQ(*nfs.server_content(params.db), *nfs.fs().read_file(params.db));
  // The journal mirrors too (truncated to zero after the last commit).
  Result<Bytes> journal = nfs.server_content(params.journal);
  ASSERT_TRUE(journal.is_ok());
  EXPECT_TRUE(journal->empty());
}

TEST(DropboxCorrectnessTest, IncrementalSyncsStayCheapAcrossSaves) {
  // The per-path cache must track the synced state: if it ever desynced,
  // later syncs would fall back to full uploads.  Verify the incremental
  // cost stays bounded save after save.
  VirtualClock clock;
  DropboxSim dropbox(clock, CostProfile::pc(), NetProfile::pc_wan());
  dropbox.fs().mkdir("/sync");

  Rng rng(3);
  Bytes content = rng.bytes(2 << 20);
  dropbox.fs().write_file("/sync/doc", content);
  for (int i = 0; i < 20; ++i) {
    clock.advance(milliseconds(250));
    dropbox.tick(clock.now());
  }

  for (int save = 0; save < 5; ++save) {
    const std::uint64_t before = dropbox.traffic().up_bytes();
    content[rng.next_below(content.size())] ^= 0x40;  // tiny edit
    dropbox.fs().write_file("/sync/doc", content);
    for (int i = 0; i < 20; ++i) {
      clock.advance(milliseconds(250));
      dropbox.tick(clock.now());
    }
    // Each tiny edit costs ~a 4 KB chunk + metadata, never a full upload.
    EXPECT_LT(dropbox.traffic().up_bytes() - before, 200'000u)
        << "save " << save;
  }
}

TEST(SeafileCorrectnessTest, ManifestRoundTripsThroughEdits) {
  VirtualClock clock;
  SeafileSim seafile(clock, CostProfile::pc(), CostProfile::pc());
  seafile.fs().mkdir("/sync");
  WeChatParams params = WeChatParams::scaled();
  params.updates = 5;
  params.initial_bytes = 2 << 20;
  params.final_bytes = (2 << 20) + 64 * 1024;
  WeChatWorkload workload(params);
  const RunStats stats = run_workload(workload, seafile, clock);

  EXPECT_GT(stats.update_bytes, 0u);
  EXPECT_GT(seafile.syncs_performed(), 0u);
  // The chunk-size tax: upload far exceeds the actual update size.
  EXPECT_GT(seafile.traffic().up_bytes(), 3 * stats.update_bytes);
}

}  // namespace
}  // namespace dcfs
