// Serial-vs-parallel equivalence for the sharded apply pipeline.
//
// Deterministic multi-client record streams — full files, deltas (fresh and
// stale), creates, unlinks, renames, links, truncates, transactional groups
// (including groups split across pump batches) — are pumped through
// CloudServers configured with 1, 2, 4 and 8 apply shards.  Every observable
// output must be byte-identical to the serial server's: file contents and
// versions, block-backed histories, conflict copies, rejections, arrival
// order, per-client downstream frame sequences (acks and forwards), the
// CostMeter's per-kind breakdown, and block-store accounting.
//
// Also checks that record_bundle frames on the wire leave server state and
// downstream traffic identical to the same records sent as plain frames.
#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "net/transport.h"
#include "proto/messages.h"
#include "rsyncx/delta.h"
#include "server/cloud_server.h"

namespace dcfs {
namespace {

using proto::OpKind;
using proto::SyncRecord;
using proto::VersionId;

constexpr std::uint32_t kClients = 3;
constexpr std::size_t kRounds = 10;

/// One simulated client's view while generating its stream: what it last
/// wrote per path (possibly stale on the server — that's the point).
struct ClientState {
  std::uint32_t id = 0;
  std::uint64_t sequence = 0;
  std::uint64_t version_counter = 0;
  std::uint64_t group_counter = 0;
  std::map<std::string, std::pair<VersionId, Bytes>> shadow;
  /// A group opened in an earlier round, waiting for its closer.
  std::vector<SyncRecord> open_group;
};

Bytes mutate(Rng& rng, const Bytes& base) {
  Bytes out = base;
  if (out.empty()) return rng.bytes(rng.next_in(64, 512));
  for (std::uint64_t flips = rng.next_in(1, 4); flips > 0; --flips) {
    out[rng.next_below(out.size())] ^= static_cast<std::uint8_t>(
        rng.next_in(1, 255));
  }
  if (rng.next_below(2) == 0) {
    const Bytes tail = rng.bytes(rng.next_in(1, 64));
    out.insert(out.end(), tail.begin(), tail.end());
  }
  return out;
}

std::string pool_path(std::uint64_t n) {
  return "/sync/f" + std::to_string(n % 8);
}

/// Generates one record; advances the client's shadow state.
SyncRecord make_record(Rng& rng, ClientState& client) {
  SyncRecord record;
  record.sequence = ++client.sequence;
  const std::string path = pool_path(rng.next_u64());
  const VersionId version{client.id, ++client.version_counter};
  record.new_version = version;
  const auto shadow = client.shadow.find(path);
  const bool known = shadow != client.shadow.end();

  switch (rng.next_below(12)) {
    case 0:
    case 1:
    case 2: {  // full file: fresh, or a near-identical rewrite (dedup food)
      record.kind = OpKind::full_file;
      record.path = path;
      record.payload = known && rng.next_below(2) == 0
                           ? mutate(rng, shadow->second.second)
                           : rng.bytes(rng.next_in(100, 2000));
      client.shadow[path] = {version, record.payload};
      break;
    }
    case 3:
    case 4:
    case 5: {  // delta against the client's (possibly stale) base
      if (!known) {
        record.kind = OpKind::full_file;
        record.path = path;
        record.payload = rng.bytes(rng.next_in(100, 2000));
        client.shadow[path] = {version, record.payload};
        break;
      }
      const Bytes target = mutate(rng, shadow->second.second);
      record.kind = OpKind::file_delta;
      record.path = path;
      record.base_version = shadow->second.first;
      record.payload = rsyncx::encode_delta(
          rsyncx::compute_delta_local(shadow->second.second, target, 4096,
                                      nullptr));
      client.shadow[path] = {version, target};
      break;
    }
    case 6: {  // create (sometimes a revival of an unlinked path)
      record.kind = OpKind::create;
      record.path = path;
      client.shadow[path] = {version, Bytes{}};
      break;
    }
    case 7: {  // unlink
      record.kind = OpKind::unlink;
      record.path = path;
      if (known) {
        record.base_version = shadow->second.first;
        client.shadow.erase(shadow);
      }
      break;
    }
    case 8: {  // rename within the pool
      record.kind = OpKind::rename;
      record.path = path;
      record.path2 = pool_path(rng.next_u64());
      if (record.path2 == record.path) record.path2 += ".renamed";
      if (known) {
        record.base_version = shadow->second.first;
        Bytes content = std::move(shadow->second.second);
        client.shadow.erase(shadow);
        client.shadow[record.path2] = {version, std::move(content)};
      }
      break;
    }
    case 9: {  // hard link
      record.kind = OpKind::link;
      record.path = path;
      record.path2 = pool_path(rng.next_u64());
      if (record.path2 == record.path) record.path2 += ".link";
      if (known) client.shadow[record.path2] = {version, shadow->second.second};
      break;
    }
    case 10: {  // mkdir / rmdir
      record.kind = rng.next_below(3) == 0 ? OpKind::rmdir : OpKind::mkdir;
      record.path = "/sync/d" + std::to_string(rng.next_below(4));
      break;
    }
    default: {  // truncate
      if (!known || shadow->second.second.empty()) {
        record.kind = OpKind::create;
        record.path = path;
        client.shadow[path] = {version, Bytes{}};
        break;
      }
      record.kind = OpKind::truncate;
      record.path = path;
      record.base_version = shadow->second.first;
      record.size = rng.next_below(shadow->second.second.size() + 1);
      shadow->second.second.resize(record.size);
      shadow->second.first = version;
      break;
    }
  }
  return record;
}

/// The records one client sends in one round.  Occasionally wraps a few
/// records into a transactional group, sometimes leaving it open so the
/// closer lands in a later pump batch.
std::vector<SyncRecord> make_round(Rng& rng, ClientState& client) {
  std::vector<SyncRecord> records;
  // Close a group left open last round first (tests cross-batch buffering).
  if (!client.open_group.empty()) {
    for (SyncRecord& member : client.open_group) {
      records.push_back(std::move(member));
    }
    client.open_group.clear();
    records.back().txn_last = true;
  }
  const std::size_t count = rng.next_in(3, 6);
  for (std::size_t i = 0; i < count; ++i) {
    if (rng.next_below(5) == 0) {  // transactional group of 2-3 records
      const std::uint64_t group = ++client.group_counter;
      const std::size_t members = rng.next_in(2, 3);
      std::vector<SyncRecord> grouped;
      for (std::size_t m = 0; m < members; ++m) {
        SyncRecord member = make_record(rng, client);
        member.txn_group = group;
        member.txn_last = false;
        grouped.push_back(std::move(member));
      }
      if (rng.next_below(4) == 0) {  // leave open until the next round
        client.open_group = std::move(grouped);
      } else {
        grouped.back().txn_last = true;
        for (SyncRecord& member : grouped) records.push_back(std::move(member));
      }
    } else {
      records.push_back(make_record(rng, client));
    }
  }
  return records;
}

void dump_bytes(std::ostringstream& out, const Bytes& bytes) {
  out << bytes.size() << ':';
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

/// Everything the outside world can observe, rendered to strings so a
/// mismatch fails with a comparable diff.
struct Observed {
  std::string state;    ///< files, versions, histories, conflicts, counters
  std::string wire;     ///< per-client downstream frame sequences
  std::string meter;    ///< CostMeter per-kind breakdown + store accounting
  std::size_t processed = 0;
};

Observed observe(const CloudServer& server,
                 const std::vector<std::vector<Bytes>>& downstream,
                 std::size_t processed) {
  std::ostringstream state;
  for (const std::string& path : server.paths()) {
    state << "file " << path << " v="
          << proto::to_string(*server.version(path)) << " ";
    Result<Bytes> content = server.fetch(path);
    dump_bytes(state, content.is_ok() ? *content : Bytes{});
    state << "\n";
    for (const VersionId& version : server.history(path)) {
      Result<Bytes> old_content = server.fetch_version(path, version);
      state << "  hist " << proto::to_string(version) << " ";
      dump_bytes(state, old_content.is_ok() ? *old_content : Bytes{});
      state << "\n";
    }
  }
  for (const std::string& path : server.conflict_paths()) {
    state << "conflict " << path << "\n";
  }
  for (const std::string& path : server.arrival_order()) {
    state << "arrival " << path << "\n";
  }
  for (const CloudServer::Rejection& rejection : server.rejections()) {
    state << "reject " << proto::to_string(rejection.kind) << " "
          << rejection.path << " " << rejection.path2 << " "
          << to_string(rejection.result) << "\n";
  }
  state << "records_applied=" << server.records_applied()
        << " conflicts=" << server.conflicts_seen()
        << " groups=" << server.txn_groups_applied() << "\n";

  std::ostringstream wire;
  for (std::size_t c = 0; c < downstream.size(); ++c) {
    wire << "client " << c + 1 << ": " << downstream[c].size() << " frames\n";
    for (const Bytes& frame : downstream[c]) {
      dump_bytes(wire, frame);
      wire << "\n";
    }
  }

  std::ostringstream meter;
  const CostSnapshot snap = server.meter().snapshot();
  for (std::size_t i = 0; i < kCostKindCount; ++i) {
    meter << to_string(static_cast<CostKind>(i)) << "="
          << snap.units_by_kind[i] << "\n";
  }
  meter << "store unique=" << server.store().unique_bytes()
        << " logical=" << server.store().logical_bytes() << "\n";

  return {state.str(), wire.str(), meter.str(), processed};
}

/// Runs the seeded scenario against a server with `shards` apply lanes.
/// With `bundle`, each round's small records ride one record_bundle frame
/// per client instead of individual frames.
Observed run_scenario(std::uint64_t seed, std::size_t shards,
                      bool bundle = false) {
  ServerConfig config;
  config.apply_shards = shards;
  CloudServer server(CostProfile::pc(), config);

  std::vector<Transport> transports;
  transports.reserve(kClients);
  std::vector<ClientState> clients(kClients);
  for (std::uint32_t c = 0; c < kClients; ++c) {
    transports.emplace_back(NetProfile::pc_wan());
    clients[c].id = c + 1;
  }
  for (std::uint32_t c = 0; c < kClients; ++c) {
    server.attach(c + 1, transports[c]);
  }

  Rng rng(seed);
  std::size_t processed = 0;
  for (std::size_t round = 0; round < kRounds; ++round) {
    for (std::uint32_t c = 0; c < kClients; ++c) {
      const std::vector<SyncRecord> records = make_round(rng, clients[c]);
      if (bundle) {
        SyncRecord frame;
        frame.kind = OpKind::record_bundle;
        frame.sequence = records.front().sequence;
        frame.payload = proto::encode_bundle(records);
        transports[c].client_send(proto::encode(frame));
      } else {
        for (const SyncRecord& record : records) {
          transports[c].client_send(proto::encode(record));
        }
      }
    }
    processed += server.pump();
  }

  std::vector<std::vector<Bytes>> downstream(kClients);
  for (std::uint32_t c = 0; c < kClients; ++c) {
    while (std::optional<Bytes> frame = transports[c].client_poll()) {
      downstream[c].push_back(std::move(*frame));
    }
  }
  return observe(server, downstream, processed);
}

class ServerParallelEquivalence
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ServerParallelEquivalence, ShardCountsProduceIdenticalOutputs) {
  const std::uint64_t seed = GetParam();
  const Observed serial = run_scenario(seed, 1);
  ASSERT_GT(serial.processed, 100u) << "scenario too small to mean anything";
  for (const std::size_t shards : {2u, 4u, 8u}) {
    const Observed parallel = run_scenario(seed, shards);
    EXPECT_EQ(parallel.processed, serial.processed) << "shards=" << shards;
    EXPECT_EQ(parallel.state, serial.state) << "shards=" << shards;
    EXPECT_EQ(parallel.wire, serial.wire) << "shards=" << shards;
    EXPECT_EQ(parallel.meter, serial.meter) << "shards=" << shards;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ServerParallelEquivalence,
                         ::testing::Values(1, 7, 42, 1234));

TEST(ServerBundleEquivalence, BundledWireMatchesPlainWire) {
  // Bundling changes upstream framing only: server state and the full
  // downstream frame sequence (per-member acks, forwards) are identical.
  for (const std::uint64_t seed : {3ull, 99ull}) {
    const Observed plain = run_scenario(seed, 1, /*bundle=*/false);
    const Observed bundled = run_scenario(seed, 1, /*bundle=*/true);
    EXPECT_EQ(bundled.processed, plain.processed);
    EXPECT_EQ(bundled.state, plain.state);
    EXPECT_EQ(bundled.wire, plain.wire);
  }
}

TEST(ServerBundleEquivalence, BundledAndShardedMatchesSerialPlain) {
  const Observed plain = run_scenario(5, 1, /*bundle=*/false);
  const Observed combined = run_scenario(5, 4, /*bundle=*/true);
  EXPECT_EQ(combined.processed, plain.processed);
  EXPECT_EQ(combined.state, plain.state);
  EXPECT_EQ(combined.wire, plain.wire);
}

}  // namespace
}  // namespace dcfs
