#include <gtest/gtest.h>

#include "common/rng.h"
#include "server/block_store.h"

namespace dcfs {
namespace {

TEST(BlockStoreTest, PutGetRoundTrip) {
  BlockStore store;
  Rng rng(1);
  const Bytes data = rng.bytes(300'000);
  const BlockHandle handle = store.put(data);
  EXPECT_EQ(handle.size, data.size());
  Result<Bytes> out = store.get(handle);
  ASSERT_TRUE(out.is_ok());
  EXPECT_EQ(*out, data);
}

TEST(BlockStoreTest, EmptyObject) {
  BlockStore store;
  const BlockHandle handle = store.put({});
  EXPECT_TRUE(handle.empty());
  EXPECT_EQ(store.get(handle)->size(), 0u);
}

TEST(BlockStoreTest, IdenticalContentIsStoredOnce) {
  BlockStore store;
  Rng rng(2);
  const Bytes data = rng.bytes(200'000);
  const BlockHandle a = store.put(data);
  const std::uint64_t after_first = store.unique_bytes();
  const BlockHandle b = store.put(data);
  EXPECT_EQ(store.unique_bytes(), after_first);  // no new chunks
  EXPECT_EQ(store.logical_bytes(), 2 * data.size());
  EXPECT_GE(store.dedup_ratio(), 1.9);
  EXPECT_EQ(*store.get(a), *store.get(b));
}

TEST(BlockStoreTest, NearIdenticalVersionsShareMostChunks) {
  BlockStore store;
  Rng rng(3);
  Bytes v1 = rng.bytes(1 << 20);
  const BlockHandle h1 = store.put(v1);

  Bytes v2 = v1;
  v2.insert(v2.begin() + 400'000, 0x42);  // 1-byte insertion (CDC shines)
  const std::uint64_t before = store.unique_bytes();
  const BlockHandle h2 = store.put(v2);

  // Only the chunks around the edit are new.
  EXPECT_LT(store.unique_bytes() - before, 64u * 1024);
  EXPECT_EQ(*store.get(h1), v1);
  EXPECT_EQ(*store.get(h2), v2);
}

TEST(BlockStoreTest, ReleaseReclaimsUnsharedChunks) {
  BlockStore store;
  Rng rng(4);
  const Bytes data = rng.bytes(500'000);
  const BlockHandle handle = store.put(data);
  EXPECT_GT(store.chunk_count(), 0u);

  store.release(handle);
  EXPECT_EQ(store.chunk_count(), 0u);
  EXPECT_EQ(store.unique_bytes(), 0u);
  EXPECT_EQ(store.logical_bytes(), 0u);
  EXPECT_FALSE(store.get(handle).is_ok());  // chunks gone
}

TEST(BlockStoreTest, SharedChunksSurviveUntilLastRelease) {
  BlockStore store;
  Rng rng(5);
  const Bytes data = rng.bytes(500'000);
  const BlockHandle a = store.put(data);
  const BlockHandle b = store.put(data);

  store.release(a);
  Result<Bytes> still_there = store.get(b);
  ASSERT_TRUE(still_there.is_ok());
  EXPECT_EQ(*still_there, data);

  store.release(b);
  EXPECT_EQ(store.chunk_count(), 0u);
}

TEST(BlockStoreTest, VersionHistoryDedupScenario) {
  // The motivating case: a document's 20 retained versions, each a small
  // edit apart, must cost little more than one copy.
  BlockStore store;
  Rng rng(6);
  Bytes content = rng.bytes(2 << 20);
  std::vector<BlockHandle> history;
  for (int version = 0; version < 20; ++version) {
    const Bytes patch = rng.bytes(512);
    const std::size_t at = rng.next_below(content.size() - patch.size());
    std::copy(patch.begin(), patch.end(),
              content.begin() + static_cast<std::ptrdiff_t>(at));
    history.push_back(store.put(content));
  }
  EXPECT_GT(store.dedup_ratio(), 5.0);
  EXPECT_LT(store.unique_bytes(), 2u * (2 << 20));  // << 20 full copies
  // Every retained version is still fully reconstructable.
  for (const BlockHandle& handle : history) {
    EXPECT_TRUE(store.get(handle).is_ok());
  }
}

TEST(BlockStoreTest, ManySmallObjects) {
  BlockStore store;
  Rng rng(7);
  std::vector<std::pair<BlockHandle, Bytes>> objects;
  for (int i = 0; i < 200; ++i) {
    Bytes data = rng.bytes(1 + rng.next_below(5000));
    objects.emplace_back(store.put(data), std::move(data));
  }
  for (const auto& [handle, data] : objects) {
    ASSERT_TRUE(store.get(handle).is_ok());
    EXPECT_EQ(*store.get(handle), data);
  }
  for (const auto& [handle, data] : objects) store.release(handle);
  EXPECT_EQ(store.chunk_count(), 0u);
}

}  // namespace
}  // namespace dcfs
