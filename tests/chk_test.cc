// Tests for dcfs::chk lockdep: cycle / recursion / same-class detection,
// guard behaviour, handler semantics, DOT export, and the zero-overhead
// passthrough contract when DCFS_CHK=OFF.
//
// Lock classes here use a "test." prefix so deliberately poisoned edges
// never collide with the production graph ("par.*", "wire.*", ...) that
// other code in this binary may populate.

#include "chk/lockdep.h"

#include <mutex>
#include <shared_mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "kvstore/kvstore.h"

namespace dcfs::chk {
namespace {

#if defined(DCFS_CHK_ENABLED)

/// Installs a capturing (optionally throwing) handler for one test and
/// restores the previous handler afterwards.
class HandlerScope {
 public:
  explicit HandlerScope(bool rethrow = false) {
    previous_ = set_violation_handler([this, rethrow](const Violation& v) {
      violations_.push_back(v);
      if (rethrow) throw std::runtime_error(v.report);
    });
  }
  ~HandlerScope() { set_violation_handler(std::move(previous_)); }

  [[nodiscard]] const std::vector<Violation>& violations() const {
    return violations_;
  }

 private:
  ViolationHandler previous_;
  std::vector<Violation> violations_;
};

TEST(LockdepTest, CleanNestingReportsNothing) {
  HandlerScope scope;
  Mutex outer("test.clean_outer");
  Mutex inner("test.clean_inner");
  for (int i = 0; i < 3; ++i) {
    const LockGuard<Mutex> a(outer);
    const LockGuard<Mutex> b(inner);
  }
  EXPECT_TRUE(scope.violations().empty());
}

TEST(LockdepTest, DetectsTwoLockInversion) {
  HandlerScope scope;
  Mutex a("test.inv_a");
  Mutex b("test.inv_b");
  {
    const LockGuard<Mutex> la(a);
    const LockGuard<Mutex> lb(b);  // records test.inv_a -> test.inv_b
  }
  ASSERT_TRUE(scope.violations().empty());
  {
    const LockGuard<Mutex> lb(b);
    const LockGuard<Mutex> la(a);  // closes the cycle
  }
  ASSERT_EQ(scope.violations().size(), 1u);
  const Violation& v = scope.violations().front();
  EXPECT_EQ(v.kind, Violation::Kind::cycle);
  // The report carries both sides of the disagreement: the class being
  // acquired, the classes held, and the stack recorded with the first edge.
  EXPECT_NE(v.report.find("test.inv_a"), std::string::npos);
  EXPECT_NE(v.report.find("test.inv_b"), std::string::npos);
  EXPECT_NE(v.report.find("chk_test.cc"), std::string::npos);
}

TEST(LockdepTest, DetectsThreeLockCycle) {
  HandlerScope scope;
  Mutex a("test.tri_a");
  Mutex b("test.tri_b");
  Mutex c("test.tri_c");
  {
    const LockGuard<Mutex> la(a);
    const LockGuard<Mutex> lb(b);  // a -> b
  }
  {
    const LockGuard<Mutex> lb(b);
    const LockGuard<Mutex> lc(c);  // b -> c
  }
  ASSERT_TRUE(scope.violations().empty());
  {
    const LockGuard<Mutex> lc(c);
    const LockGuard<Mutex> la(a);  // c -> a closes a -> b -> c -> a
  }
  ASSERT_EQ(scope.violations().size(), 1u);
  EXPECT_EQ(scope.violations().front().kind, Violation::Kind::cycle);
}

TEST(LockdepTest, ThrowingHandlerLeavesLockUnacquired) {
  Mutex mu("test.recursion");
  HandlerScope scope(/*rethrow=*/true);
  mu.lock();
  // Re-acquiring the held instance is reported before the underlying
  // std::mutex would self-deadlock; the throwing handler aborts the
  // acquisition entirely.
  EXPECT_THROW(mu.lock(), std::runtime_error);
  ASSERT_EQ(scope.violations().size(), 1u);
  EXPECT_EQ(scope.violations().front().kind, Violation::Kind::recursion);
  // Still exactly once locked: a plain unlock/relock round-trip works.
  mu.unlock();
  mu.lock(Site::current());
  mu.unlock();
}

TEST(LockdepTest, DetectsSameClassNesting) {
  HandlerScope scope;
  Mutex first("test.same_class");
  Mutex second("test.same_class");
  {
    const LockGuard<Mutex> a(first);
    const LockGuard<Mutex> b(second);
  }
  ASSERT_EQ(scope.violations().size(), 1u);
  EXPECT_EQ(scope.violations().front().kind, Violation::Kind::same_class);
}

TEST(LockdepTest, SharedAcquisitionsFeedTheGraph) {
  HandlerScope scope;
  SharedMutex rw("test.shared_rw");
  Mutex plain("test.shared_plain");
  {
    const SharedLock r(rw);
    const LockGuard<Mutex> g(plain);  // shared_rw -> shared_plain
  }
  ASSERT_TRUE(scope.violations().empty());
  {
    const LockGuard<Mutex> g(plain);
    const SharedLock r(rw);  // reader side still closes the cycle
  }
  ASSERT_EQ(scope.violations().size(), 1u);
  EXPECT_EQ(scope.violations().front().kind, Violation::Kind::cycle);
}

TEST(LockdepTest, UniqueLockParticipates) {
  HandlerScope scope(/*rethrow=*/true);
  Mutex mu("test.unique");
  UniqueLock lock(mu);
  EXPECT_TRUE(lock.raw().owns_lock());
  EXPECT_THROW(UniqueLock{mu}, std::runtime_error);  // recursion caught
  ASSERT_EQ(scope.violations().size(), 1u);
  EXPECT_EQ(scope.violations().front().kind, Violation::Kind::recursion);
}

TEST(LockdepTest, ViolationCountIsMonotonic) {
  const std::uint64_t before = violation_count();
  HandlerScope scope;
  Mutex a("test.count_a");
  Mutex b("test.count_b");
  {
    const LockGuard<Mutex> la(a);
    const LockGuard<Mutex> lb(b);
  }
  {
    const LockGuard<Mutex> lb(b);
    const LockGuard<Mutex> la(a);
  }
  EXPECT_EQ(violation_count(), before + 1);
}

TEST(LockdepTest, DotExportShowsClassesAndEdges) {
  HandlerScope scope;
  Mutex outer("test.dot_outer");
  Mutex inner("test.dot_inner");
  {
    const LockGuard<Mutex> a(outer);
    const LockGuard<Mutex> b(inner);
  }
  const std::string dot = lockdep_dot();
  EXPECT_NE(dot.find("digraph lockdep"), std::string::npos);
  EXPECT_NE(dot.find("test.dot_outer"), std::string::npos);
  EXPECT_NE(dot.find("\"test.dot_outer\" -> \"test.dot_inner\""),
            std::string::npos);
}

// Regression note (PR 5, satellite a): when KvStore gained its
// "kvstore.table" mutex, the pre-existing call chain
// put() -> maybe_auto_compact() -> compact() would have re-acquired the
// lock the mutation already held — a guaranteed self-deadlock on
// std::mutex that lockdep reports as a recursion violation.  The store
// was restructured around compact_locked() (mutations never re-enter the
// public locking surface).  This test pins both halves: the bad pattern
// is detected, and the real store no longer exhibits it.
TEST(LockdepTest, KvStoreAutoCompactionDoesNotRecurse) {
  {  // The pattern the restructure removed, in miniature.
    HandlerScope scope(/*rethrow=*/true);
    Mutex table("test.kvstore_regression");
    const auto mutation = [&] {
      const LockGuard<Mutex> lock(table);
      const auto compact = [&] { const LockGuard<Mutex> again(table); };
      compact();  // "auto-compaction" re-entering the public surface
    };
    EXPECT_THROW(mutation(), std::runtime_error);
    ASSERT_EQ(scope.violations().size(), 1u);
    EXPECT_EQ(scope.violations().front().kind, Violation::Kind::recursion);
  }
  {  // The real store under an aggressive auto-compaction threshold:
     // every put crosses it, so compaction runs inside the mutation.  Any
     // recursion would abort (default handler) or throw (this handler).
    HandlerScope scope(/*rethrow=*/true);
    KvStore store(std::make_shared<MemoryWalStorage>());
    store.set_auto_compaction(1.0, /*min_bytes=*/1);
    const Bytes value(512, std::uint8_t{0xab});
    for (int i = 0; i < 64; ++i) {
      store.put("key" + std::to_string(i % 4), value);
    }
    EXPECT_TRUE(scope.violations().empty());
    EXPECT_EQ(store.size(), 4u);
  }
}

#else  // !DCFS_CHK_ENABLED — the passthrough contract.

// The OFF-mode wrappers must add nothing to the std primitives they wrap:
// same size (no class id, no bookkeeping) and the same call shapes.
static_assert(sizeof(Mutex) == sizeof(std::mutex));
static_assert(sizeof(SharedMutex) == sizeof(std::shared_mutex));
static_assert(sizeof(LockGuard<Mutex>) ==
              sizeof(std::lock_guard<std::mutex>));
static_assert(sizeof(UniqueLock) == sizeof(std::unique_lock<std::mutex>));
static_assert(!enabled());

TEST(LockdepTest, PassthroughLocksWork) {
  Mutex mu("test.passthrough");
  {
    const LockGuard<Mutex> lock(mu);
  }
  SharedMutex rw("test.passthrough_rw");
  {
    const SharedLock r(rw);
  }
  {
    const LockGuard<SharedMutex> w(rw);
  }
  UniqueLock lock(mu);
  EXPECT_TRUE(lock.raw().owns_lock());
  EXPECT_EQ(lockdep_dot(), "digraph lockdep {\n}\n");
}

#endif  // DCFS_CHK_ENABLED

TEST(LockdepTest, EnabledMatchesBuildConfig) {
#if defined(DCFS_CHK_ENABLED)
  EXPECT_TRUE(enabled());
#else
  EXPECT_FALSE(enabled());
#endif
}

}  // namespace
}  // namespace dcfs::chk
