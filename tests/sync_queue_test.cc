#include <gtest/gtest.h>

#include "core/sync_queue.h"

namespace dcfs {
namespace {

SyncNode meta(proto::OpKind kind, std::string path, std::string path2 = "") {
  SyncNode node;
  node.kind = kind;
  node.path = std::move(path);
  node.path2 = std::move(path2);
  return node;
}

TEST(SyncQueueTest, MetaNodesPopInFifoOrderAfterDelay) {
  SyncQueue queue(seconds(3));
  queue.enqueue(meta(proto::OpKind::create, "/a"), 0);
  queue.enqueue(meta(proto::OpKind::create, "/b"), 0);

  EXPECT_TRUE(queue.pop_ready(seconds(1)).empty());  // too early
  const auto ready = queue.pop_ready(seconds(3));
  ASSERT_EQ(ready.size(), 2u);
  EXPECT_EQ(ready[0].path, "/a");
  EXPECT_EQ(ready[1].path, "/b");
  EXPECT_TRUE(queue.empty());
}

TEST(SyncQueueTest, WritesCoalesceIntoOneNode) {
  SyncQueue queue(seconds(3));
  queue.add_write("/f", 0, to_bytes("aaaa"), 0);
  queue.add_write("/f", 4, to_bytes("bbbb"), 0);   // adjacent: merge
  queue.add_write("/f", 2, to_bytes("XX"), 0);     // overlap: newer wins
  EXPECT_EQ(queue.size(), 1u);

  queue.pack("/f");
  const auto ready = queue.pop_ready(seconds(3));
  ASSERT_EQ(ready.size(), 1u);
  ASSERT_EQ(ready[0].segments.size(), 1u);
  EXPECT_EQ(ready[0].segments[0].offset, 0u);
  EXPECT_EQ(as_text(ready[0].segments[0].data), "aaXXbbbb");
}

TEST(SyncQueueTest, DisjointWritesKeepSeparateSegments) {
  SyncQueue queue(seconds(3));
  queue.add_write("/f", 0, to_bytes("head"), 0);
  queue.add_write("/f", 100, to_bytes("tail"), 0);
  queue.pack("/f");
  const auto ready = queue.pop_ready(0, /*flush_all=*/true);
  ASSERT_EQ(ready.size(), 1u);
  ASSERT_EQ(ready[0].segments.size(), 2u);
  EXPECT_EQ(ready[0].segments[0].offset, 0u);
  EXPECT_EQ(ready[0].segments[1].offset, 100u);
}

TEST(SyncQueueTest, WritesToDifferentFilesGetDifferentNodes) {
  SyncQueue queue(seconds(3));
  queue.add_write("/a", 0, to_bytes("1"), 0);
  queue.add_write("/b", 0, to_bytes("2"), 0);
  EXPECT_EQ(queue.size(), 2u);
}

TEST(SyncQueueTest, PackedNodeStopsAbsorbingWrites) {
  SyncQueue queue(seconds(3));
  queue.add_write("/f", 0, to_bytes("first"), 0);
  queue.pack("/f");
  queue.add_write("/f", 0, to_bytes("SECOND"), 0);
  EXPECT_EQ(queue.size(), 2u);

  // The paper's corruption scenario: rename away + recreate must not attach
  // new writes to the old node.
  const auto ready = queue.pop_ready(0, true);
  ASSERT_EQ(ready.size(), 2u);
  EXPECT_EQ(as_text(ready[0].segments[0].data), "first");
  EXPECT_EQ(as_text(ready[1].segments[0].data), "SECOND");
}

TEST(SyncQueueTest, OpenWriteNodeBlocksPopUntilIdle) {
  SyncQueue queue(seconds(3));
  queue.add_write("/f", 0, to_bytes("x"), seconds(0));
  queue.enqueue(meta(proto::OpKind::create, "/later"), seconds(0));

  // At t=4 the node is idle (last touch 0, delay 3): auto-packed and popped.
  queue.add_write("/f", 1, to_bytes("y"), seconds(2));  // still active at 4?
  // last_touch=2 => at t=4 age=2 < 3: blocked, nothing pops.
  EXPECT_TRUE(queue.pop_ready(seconds(4)).empty());

  // At t=6, age=4 >= 3: auto-pack, both nodes pop.
  const auto ready = queue.pop_ready(seconds(6));
  ASSERT_EQ(ready.size(), 2u);
  EXPECT_EQ(ready[0].kind, proto::OpKind::write);
  EXPECT_EQ(ready[1].path, "/later");
}

TEST(SyncQueueTest, TombstonedNodeIsDropped) {
  SyncQueue queue(seconds(0));
  queue.add_write("/t1", 0, to_bytes("contents"), 0);
  queue.pack("/t1");
  queue.enqueue(meta(proto::OpKind::rename, "/t1", "/f"), 0);

  SyncNode* node = queue.find_write_node("/t1");
  ASSERT_NE(node, nullptr);

  SyncNode delta = meta(proto::OpKind::file_delta, "/f", "/t0");
  const std::uint64_t delta_seq = queue.enqueue(std::move(delta), 0);
  queue.replace_with_span(*node, delta_seq);

  const auto ready = queue.pop_ready(0, true);
  ASSERT_EQ(ready.size(), 2u);  // write node dropped
  EXPECT_EQ(ready[0].kind, proto::OpKind::rename);
  EXPECT_EQ(ready[1].kind, proto::OpKind::file_delta);
}

TEST(SyncQueueTest, SpanLabelsTransactionalGroup) {
  SyncQueue queue(seconds(0));
  queue.add_write("/t1", 0, to_bytes("contents"), 0);
  queue.pack("/t1");
  queue.enqueue(meta(proto::OpKind::rename, "/t1", "/f"), 0);
  SyncNode* node = queue.find_write_node("/t1");
  ASSERT_NE(node, nullptr);
  const std::uint64_t delta_seq =
      queue.enqueue(meta(proto::OpKind::file_delta, "/f", "/t0"), 0);
  queue.replace_with_span(*node, delta_seq);

  const auto ready = queue.pop_ready(0, true);
  ASSERT_EQ(ready.size(), 2u);
  EXPECT_NE(ready[0].txn_group, 0u);
  EXPECT_EQ(ready[0].txn_group, ready[1].txn_group);
  EXPECT_FALSE(ready[0].txn_last);
  EXPECT_TRUE(ready[1].txn_last);
}

TEST(SyncQueueTest, InterleavedSpansMerge) {
  SyncQueue queue(seconds(0));
  for (int i = 0; i < 6; ++i) {
    queue.enqueue(meta(proto::OpKind::create, "/f" + std::to_string(i)), 0);
  }
  queue.add_span(2, 4);
  queue.add_span(3, 6);  // interleaves with [2,4] -> merged [2,6]

  const auto ready = queue.pop_ready(0, true);
  ASSERT_EQ(ready.size(), 6u);
  EXPECT_EQ(ready[0].txn_group, 0u);
  const std::uint64_t group = ready[1].txn_group;  // seq 2
  EXPECT_NE(group, 0u);
  for (int i = 1; i <= 5; ++i) EXPECT_EQ(ready[i].txn_group, group);
  EXPECT_TRUE(ready[5].txn_last);
  for (int i = 1; i < 5; ++i) EXPECT_FALSE(ready[i].txn_last);
}

TEST(SyncQueueTest, SpanHoldsEarlierNodesUntilClosingNodeReady) {
  SyncQueue queue(seconds(3));
  queue.enqueue(meta(proto::OpKind::create, "/a"), seconds(0));
  queue.enqueue(meta(proto::OpKind::create, "/b"), seconds(0));
  // Span [1,3]: node 3 enqueued much later.
  const std::uint64_t late =
      queue.enqueue(meta(proto::OpKind::file_delta, "/a"), seconds(10));
  queue.add_span(1, late);

  // At t=5 nodes 1,2 are past their delay but the closing node is not.
  EXPECT_TRUE(queue.pop_ready(seconds(5)).empty());

  // Once the closing node matures, the whole group pops together.
  const auto ready = queue.pop_ready(seconds(13));
  ASSERT_EQ(ready.size(), 3u);
  EXPECT_TRUE(ready[2].txn_last);
}

TEST(SyncQueueTest, PendingBytesTracksContent) {
  SyncQueue queue(seconds(3));
  EXPECT_EQ(queue.pending_bytes(), 0u);
  queue.add_write("/f", 0, Bytes(100, 'x'), 0);
  EXPECT_EQ(queue.pending_bytes(), 100u);
  queue.add_write("/f", 100, Bytes(50, 'y'), 0);
  EXPECT_EQ(queue.pending_bytes(), 150u);
  queue.pack("/f");
  queue.pop_ready(0, true);
  EXPECT_EQ(queue.pending_bytes(), 0u);
}

TEST(SyncQueueTest, FindWriteNodeFindsNewestNonTombstone) {
  SyncQueue queue(seconds(3));
  queue.add_write("/f", 0, to_bytes("old"), 0);
  queue.pack("/f");
  queue.add_write("/f", 0, to_bytes("new"), 0);
  SyncNode* node = queue.find_write_node("/f");
  ASSERT_NE(node, nullptr);
  EXPECT_EQ(as_text(node->segments[0].data), "new");
  EXPECT_EQ(queue.find_write_node("/missing"), nullptr);
}

TEST(SyncQueueTest, FlushDrainsEverythingIncludingOpenNodes) {
  SyncQueue queue(seconds(3));
  queue.add_write("/f", 0, to_bytes("x"), 0);
  queue.enqueue(meta(proto::OpKind::unlink, "/g"), 0);
  const auto ready = queue.pop_ready(0, /*flush_all=*/true);
  EXPECT_EQ(ready.size(), 2u);
  EXPECT_TRUE(queue.empty());
}


TEST(SyncQueueSnapshotTest, SnapshotShipsWholeQueueAsOneGroup) {
  SyncQueue queue(seconds(3), CausalityMode::snapshot, seconds(2));
  queue.enqueue(meta(proto::OpKind::create, "/a"), 0);
  queue.add_write("/a", 0, to_bytes("x"), 0);

  // The first pop takes the first snapshot; the schedule runs from there.
  const auto first = queue.pop_ready(seconds(1));
  ASSERT_EQ(first.size(), 2u);
  // The whole snapshot forms one transactional group.
  EXPECT_NE(first[0].txn_group, 0u);
  EXPECT_EQ(first[0].txn_group, first[1].txn_group);
  EXPECT_TRUE(first[1].txn_last);
  EXPECT_FALSE(first[0].txn_last);

  // Nothing further ships until the interval elapses.
  queue.enqueue(meta(proto::OpKind::create, "/b"), seconds(1));
  EXPECT_TRUE(queue.pop_ready(seconds(2)).empty());
  EXPECT_EQ(queue.pop_ready(seconds(3)).size(), 1u);
}

TEST(SyncQueueSnapshotTest, SuccessiveSnapshotsGetDistinctGroups) {
  SyncQueue queue(seconds(3), CausalityMode::snapshot, seconds(2));
  queue.enqueue(meta(proto::OpKind::create, "/a"), 0);
  const auto first = queue.pop_ready(seconds(2));
  ASSERT_EQ(first.size(), 1u);

  queue.enqueue(meta(proto::OpKind::create, "/b"), seconds(3));
  const auto second = queue.pop_ready(seconds(5));
  ASSERT_EQ(second.size(), 1u);
  EXPECT_NE(first[0].txn_group, second[0].txn_group);
}

TEST(SyncQueueSnapshotTest, EmptyQueueSnapshotsQuietly) {
  SyncQueue queue(seconds(3), CausalityMode::snapshot, seconds(1));
  EXPECT_TRUE(queue.pop_ready(seconds(1)).empty());
  EXPECT_TRUE(queue.pop_ready(seconds(2)).empty());
}

TEST(SyncQueueSnapshotTest, FlushShipsImmediately) {
  SyncQueue queue(seconds(3), CausalityMode::snapshot, seconds(60));
  queue.add_write("/f", 0, to_bytes("data"), 0);
  const auto ready = queue.pop_ready(0, /*flush_all=*/true);
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_TRUE(queue.empty());
}

TEST(SyncQueueSnapshotTest, TombstonesWithinWindowStillDrop) {
  SyncQueue queue(seconds(3), CausalityMode::snapshot, seconds(5));
  queue.add_write("/t1", 0, to_bytes("contents"), 0);
  queue.pack("/t1");
  SyncNode* node = queue.find_write_node("/t1");
  ASSERT_NE(node, nullptr);
  ASSERT_TRUE(queue.safe_to_replace(*node, 0));
  const std::uint64_t delta_seq =
      queue.enqueue(meta(proto::OpKind::file_delta, "/f", "/t0"), 0);
  queue.replace_with_span(*node, delta_seq);

  const auto ready = queue.pop_ready(seconds(5));
  ASSERT_EQ(ready.size(), 1u);  // tombstone dropped, delta ships
  EXPECT_EQ(ready[0].kind, proto::OpKind::file_delta);
}

}  // namespace
}  // namespace dcfs
