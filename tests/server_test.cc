#include <gtest/gtest.h>

#include "common/rng.h"
#include "rsyncx/delta.h"
#include "server/cloud_server.h"

namespace dcfs {
namespace {

using proto::OpKind;
using proto::SyncRecord;
using proto::VersionId;

class ServerTest : public ::testing::Test {
 protected:
  CloudServer server_{CostProfile::pc()};
  std::uint64_t seq_ = 0;

  SyncRecord record(OpKind kind, std::string path, VersionId base,
                    VersionId next) {
    SyncRecord r;
    r.sequence = ++seq_;
    r.kind = kind;
    r.path = std::move(path);
    r.base_version = base;
    r.new_version = next;
    return r;
  }

  proto::Ack apply(const SyncRecord& r, std::uint32_t client = 1) {
    return server_.apply_record(client, r);
  }

  void put_file(const std::string& path, ByteSpan content, VersionId v) {
    SyncRecord r = record(OpKind::full_file, path, {}, v);
    r.payload.assign(content.begin(), content.end());
    ASSERT_EQ(apply(r).result, Errc::ok);
  }

  SyncRecord write_record(const std::string& path, std::uint64_t offset,
                          ByteSpan data, VersionId base, VersionId next) {
    SyncRecord r = record(OpKind::write, path, base, next);
    r.payload = proto::encode_segments({{offset, Bytes(data.begin(),
                                                       data.end())}});
    return r;
  }
};

TEST_F(ServerTest, CreateWriteReadback) {
  ASSERT_EQ(apply(record(OpKind::create, "/f", {}, {1, 1})).result, Errc::ok);
  ASSERT_EQ(apply(write_record("/f", 0, to_bytes("hello"), {1, 1}, {1, 2}))
                .result,
            Errc::ok);
  EXPECT_EQ(as_text(*server_.fetch("/f")), "hello");
  EXPECT_EQ(*server_.version("/f"), (VersionId{1, 2}));
}

TEST_F(ServerTest, WriteSegmentsApplyInOrder) {
  apply(record(OpKind::create, "/f", {}, {1, 1}));
  SyncRecord r = record(OpKind::write, "/f", {1, 1}, {1, 2});
  r.payload = proto::encode_segments(
      {{0, to_bytes("aaaa")}, {2, to_bytes("BB")}, {8, to_bytes("tail")}});
  ASSERT_EQ(apply(r).result, Errc::ok);
  const Bytes content = *server_.fetch("/f");
  EXPECT_EQ(as_text(ByteSpan{content.data(), 4}), "aaBB");
  EXPECT_EQ(content.size(), 12u);
}

TEST_F(ServerTest, RenameMovesAndPreservesReplacedHistory) {
  put_file("/a", to_bytes("A-content"), {1, 1});
  put_file("/b", to_bytes("B-content"), {1, 2});

  SyncRecord r = record(OpKind::rename, "/a", {1, 1}, {1, 3});
  r.path2 = "/b";
  ASSERT_EQ(apply(r).result, Errc::ok);

  EXPECT_FALSE(server_.fetch("/a").is_ok());
  EXPECT_EQ(as_text(*server_.fetch("/b")), "A-content");
  EXPECT_EQ(*server_.version("/b"), (VersionId{1, 3}));
}

TEST_F(ServerTest, UnlinkKeepsTombstoneForDelta) {
  Rng rng(1);
  const Bytes content = rng.bytes(10'000);
  put_file("/f", content, {1, 1});
  ASSERT_EQ(apply(record(OpKind::unlink, "/f", {1, 1}, {1, 2})).result,
            Errc::ok);
  EXPECT_FALSE(server_.fetch("/f").is_ok());

  // Delete-then-recreate: create again, then a delta whose base is the
  // tombstoned version must apply cleanly (base_deleted flag).
  ASSERT_EQ(apply(record(OpKind::create, "/f", {}, {1, 3})).result, Errc::ok);
  Bytes target = content;
  target[0] ^= 0xFF;
  const rsyncx::Delta delta =
      rsyncx::compute_delta_local(content, target, 4096, nullptr);
  SyncRecord r = record(OpKind::file_delta, "/f", {1, 1}, {1, 4});
  r.payload = rsyncx::encode_delta(delta);
  r.base_deleted = true;
  const proto::Ack ack = apply(r);
  EXPECT_EQ(ack.result, Errc::ok);
  EXPECT_EQ(*server_.fetch("/f"), target);
}

TEST_F(ServerTest, TruncateResizes) {
  put_file("/f", to_bytes("0123456789"), {1, 1});
  SyncRecord r = record(OpKind::truncate, "/f", {1, 1}, {1, 2});
  r.size = 4;
  ASSERT_EQ(apply(r).result, Errc::ok);
  EXPECT_EQ(as_text(*server_.fetch("/f")), "0123");
}

TEST_F(ServerTest, LinkDuplicatesContent) {
  put_file("/f", to_bytes("shared"), {1, 1});
  SyncRecord r = record(OpKind::link, "/f", {1, 1}, {1, 2});
  r.path2 = "/f2";
  ASSERT_EQ(apply(r).result, Errc::ok);
  EXPECT_EQ(as_text(*server_.fetch("/f2")), "shared");
}

TEST_F(ServerTest, MkdirRmdirTracked) {
  ASSERT_EQ(apply(record(OpKind::mkdir, "/d", {}, {1, 1})).result, Errc::ok);
  EXPECT_TRUE(server_.has_dir("/d"));
  ASSERT_EQ(apply(record(OpKind::rmdir, "/d", {}, {1, 2})).result, Errc::ok);
  EXPECT_FALSE(server_.has_dir("/d"));
}

TEST_F(ServerTest, StaleWriteCreatesConflictCopyFirstWriteWins) {
  put_file("/f", to_bytes("base-content"), {1, 1});

  // Client 2 writes against version {1,1}: applies (first write wins).
  ASSERT_EQ(
      apply(write_record("/f", 0, to_bytes("2222"), {1, 1}, {2, 1}), 2).result,
      Errc::ok);

  // Client 3 also writes against {1,1}: stale -> conflict copy.
  const proto::Ack ack =
      apply(write_record("/f", 0, to_bytes("3333"), {1, 1}, {3, 1}), 3);
  EXPECT_EQ(ack.result, Errc::conflict);
  EXPECT_EQ(ack.conflict_path, "/f.conflict-3");

  // Main file holds the first writer's data; conflict copy holds the
  // loser's increment applied to the proper base.
  EXPECT_EQ(as_text(ByteSpan{server_.fetch("/f")->data(), 4}), "2222");
  Result<Bytes> conflict = server_.fetch("/f.conflict-3");
  ASSERT_TRUE(conflict.is_ok());
  EXPECT_EQ(as_text(ByteSpan{conflict->data(), 4}), "3333");
  EXPECT_EQ(server_.conflicts_seen(), 1u);
  EXPECT_EQ(server_.conflict_paths(),
            std::vector<std::string>{"/f.conflict-3"});
}

TEST_F(ServerTest, StaleDeltaCreatesConflictCopy) {
  Rng rng(2);
  const Bytes v1 = rng.bytes(8'000);
  put_file("/f", v1, {1, 1});

  // Another client moves the file forward.
  put_file("/f", rng.bytes(8'000), {2, 7});

  // A delta against the superseded v1 arrives.
  Bytes target = v1;
  target[100] ^= 1;
  SyncRecord r = record(OpKind::file_delta, "/f", {1, 1}, {3, 1});
  r.payload =
      rsyncx::encode_delta(rsyncx::compute_delta_local(v1, target, 4096,
                                                       nullptr));
  const proto::Ack ack = apply(r, 3);
  EXPECT_EQ(ack.result, Errc::conflict);
  EXPECT_EQ(*server_.fetch("/f.conflict-3"), target);
}

TEST_F(ServerTest, TransactionalGroupAppliesAtomically) {
  // The Word flow (Fig. 5/6): rename f->t0; create t1; rename t1->f;
  // delta(f against t0); unlink t0 — with the middle records in one group.
  Rng rng(3);
  const Bytes old_content = rng.bytes(20'000);
  Bytes new_content = old_content;
  new_content.insert(new_content.begin() + 5'000, 77);

  put_file("/f", old_content, {1, 1});

  SyncRecord rename_away = record(OpKind::rename, "/f", {1, 1}, {1, 2});
  rename_away.path2 = "/t0";
  ASSERT_EQ(apply(rename_away).result, Errc::ok);

  ASSERT_EQ(apply(record(OpKind::create, "/t1", {}, {1, 3})).result, Errc::ok);

  SyncRecord rename_back = record(OpKind::rename, "/t1", {1, 3}, {1, 4});
  rename_back.path2 = "/f";
  rename_back.txn_group = 9;
  ASSERT_EQ(apply(rename_back).result, Errc::ok);  // buffered

  // Until the group closes, /f does not exist in its final form... the
  // group is buffered, so /t1 still exists.
  EXPECT_TRUE(server_.fetch("/t1").is_ok());

  SyncRecord delta = record(OpKind::file_delta, "/f", {1, 2}, {1, 5});
  delta.path2 = "/t0";
  delta.payload = rsyncx::encode_delta(
      rsyncx::compute_delta_local(old_content, new_content, 4096, nullptr));
  delta.txn_group = 9;
  delta.txn_last = true;
  const proto::Ack ack = apply(delta);
  EXPECT_EQ(ack.result, Errc::ok);

  EXPECT_EQ(*server_.fetch("/f"), new_content);
  EXPECT_FALSE(server_.fetch("/t1").is_ok());

  ASSERT_EQ(apply(record(OpKind::unlink, "/t0", {1, 2}, {1, 6})).result,
            Errc::ok);
  EXPECT_FALSE(server_.fetch("/t0").is_ok());
}

TEST_F(ServerTest, GeditFlowDeltaAgainstReplacedFile) {
  // create tmp; (writes elided); link f f~; rename tmp->f [replaces f];
  // delta(f) whose base is f's pre-rename version, in one group.
  Rng rng(4);
  const Bytes old_f = rng.bytes(10'000);
  Bytes new_f = old_f;
  new_f[9] ^= 0xAA;

  put_file("/f", old_f, {1, 1});
  ASSERT_EQ(apply(record(OpKind::create, "/tmp1", {}, {1, 2})).result,
            Errc::ok);
  SyncRecord link = record(OpKind::link, "/f", {1, 1}, {1, 3});
  link.path2 = "/f~";
  ASSERT_EQ(apply(link).result, Errc::ok);

  SyncRecord rename_over = record(OpKind::rename, "/tmp1", {1, 2}, {1, 4});
  rename_over.path2 = "/f";
  rename_over.txn_group = 5;
  apply(rename_over);

  SyncRecord delta = record(OpKind::file_delta, "/f", {1, 1}, {1, 5});
  delta.payload = rsyncx::encode_delta(
      rsyncx::compute_delta_local(old_f, new_f, 4096, nullptr));
  delta.txn_group = 5;
  delta.txn_last = true;
  const proto::Ack ack = apply(delta);
  EXPECT_EQ(ack.result, Errc::ok) << static_cast<int>(ack.result);

  EXPECT_EQ(*server_.fetch("/f"), new_f);
  EXPECT_EQ(as_text(ByteSpan{server_.fetch("/f~")->data(), 4}),
            as_text(ByteSpan{old_f.data(), 4}));
}

TEST_F(ServerTest, ConflictedGroupLeavesMainFilesUntouched) {
  Rng rng(5);
  const Bytes old_f = rng.bytes(5'000);
  put_file("/f", old_f, {1, 1});
  // Another client supersedes /f.
  const Bytes other = rng.bytes(5'000);
  put_file("/f", other, {2, 9});

  // A transactional group from client 1 still based on {1,1}.
  SyncRecord rename_over = record(OpKind::rename, "/f", {2, 9}, {1, 2});
  rename_over.path2 = "/f.old";
  rename_over.txn_group = 3;
  apply(rename_over);

  Bytes target = old_f;
  target[0] ^= 1;
  SyncRecord delta = record(OpKind::file_delta, "/f.old", {1, 1}, {1, 3});
  delta.payload = rsyncx::encode_delta(
      rsyncx::compute_delta_local(old_f, target, 4096, nullptr));
  delta.txn_group = 3;
  delta.txn_last = true;
  const proto::Ack ack = apply(delta);
  EXPECT_EQ(ack.result, Errc::conflict);

  // Main file untouched (the group rolled back), conflict copy exists.
  EXPECT_EQ(*server_.fetch("/f"), other);
  EXPECT_TRUE(server_.fetch("/f.old.conflict-1").is_ok());
}

TEST_F(ServerTest, ArrivalOrderRecordsFirstContent) {
  put_file("/a", to_bytes("1"), {1, 1});
  put_file("/b", to_bytes("2"), {1, 2});
  put_file("/a", to_bytes("3"), {1, 3});
  EXPECT_EQ(server_.arrival_order(),
            (std::vector<std::string>{"/a", "/b"}));
}

TEST_F(ServerTest, PumpProcessesFramesAndSendsAcks) {
  Transport transport(NetProfile::pc_wan());
  server_.attach(1, transport);

  SyncRecord r = record(OpKind::create, "/f", {}, {1, 1});
  transport.client_send(proto::encode(r));
  EXPECT_EQ(server_.pump(), 1u);

  auto frame = transport.client_poll();
  ASSERT_TRUE(frame.has_value());
  ASSERT_EQ((*frame)[0], 1);  // ack tag
  Result<proto::Ack> ack =
      proto::decode_ack(ByteSpan{frame->data() + 1, frame->size() - 1});
  ASSERT_TRUE(ack.is_ok());
  EXPECT_EQ(ack->result, Errc::ok);
  EXPECT_GT(server_.meter().units(), 0u);
}

TEST_F(ServerTest, ForwardsToOtherClients) {
  Transport t1(NetProfile::pc_wan());
  Transport t2(NetProfile::pc_wan());
  server_.attach(1, t1);
  server_.attach(2, t2);

  SyncRecord r = record(OpKind::create, "/f", {}, {1, 1});
  t1.client_send(proto::encode(r));
  server_.pump();

  // Client 1 gets an ack; client 2 gets the forwarded record.
  ASSERT_TRUE(t1.client_poll().has_value());
  auto forwarded = t2.client_poll();
  ASSERT_TRUE(forwarded.has_value());
  EXPECT_EQ((*forwarded)[0], 2);  // record tag
  Result<SyncRecord> decoded = proto::decode_record(
      ByteSpan{forwarded->data() + 1, forwarded->size() - 1});
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded->path, "/f");
}

TEST_F(ServerTest, MalformedFrameIsRejectedGracefully) {
  Transport transport(NetProfile::pc_wan());
  server_.attach(1, transport);
  transport.client_send(Bytes{1, 2, 3});
  server_.pump();
  auto frame = transport.client_poll();
  ASSERT_TRUE(frame.has_value());
  Result<proto::Ack> ack =
      proto::decode_ack(ByteSpan{frame->data() + 1, frame->size() - 1});
  ASSERT_TRUE(ack.is_ok());
  EXPECT_EQ(ack->result, Errc::corruption);
}

}  // namespace
}  // namespace dcfs
