#include <gtest/gtest.h>

#include "baselines/deltacfs_system.h"
#include "common/rng.h"
#include "trace/filebench.h"
#include "trace/workloads.h"

namespace dcfs {
namespace {

/// A no-op cost model (every op is 1 µs) for filebench plumbing tests.
struct FlatCosts final : OpCostModel {
  Duration cost(FbOp, std::uint64_t) override { return 1; }
};

// ---------------------------------------------------------------------------
// Workloads against DeltaCFS end-to-end (content correctness is the bar).
// ---------------------------------------------------------------------------

class WorkloadTest : public ::testing::Test {
 protected:
  WorkloadTest() : system_(clock_, CostProfile::pc(), NetProfile::pc_wan()) {
    system_.fs().mkdir("/sync");
  }

  RunStats run(Workload& workload) {
    return run_workload(workload, system_, clock_);
  }

  VirtualClock clock_;
  DeltaCfsSystem system_;
};

TEST_F(WorkloadTest, AppendWorkloadSyncsExactContent) {
  AppendParams params = AppendParams::scaled();
  AppendWorkload workload(params);
  const RunStats stats = run(workload);

  EXPECT_EQ(stats.update_bytes,
            static_cast<std::uint64_t>(params.appends) * params.append_bytes);
  Result<Bytes> local = system_.local().read_file(params.path);
  Result<Bytes> cloud = system_.server().fetch(params.path);
  ASSERT_TRUE(local.is_ok());
  ASSERT_TRUE(cloud.is_ok());
  EXPECT_EQ(*local, *cloud);
  EXPECT_EQ(local->size(), stats.update_bytes);
}

TEST_F(WorkloadTest, RandomWriteWorkloadSyncsExactContent) {
  RandomWriteParams params = RandomWriteParams::scaled();
  RandomWriteWorkload workload(params);
  run(workload);

  Result<Bytes> local = system_.local().read_file(params.path);
  Result<Bytes> cloud = system_.server().fetch(params.path);
  ASSERT_TRUE(local.is_ok());
  ASSERT_TRUE(cloud.is_ok());
  EXPECT_EQ(*local, *cloud);
  EXPECT_EQ(local->size(), params.file_bytes);
}

TEST_F(WorkloadTest, WordWorkloadSyncsExactContentViaDeltas) {
  WordParams params = WordParams::scaled();
  params.saves = 6;
  WordWorkload workload(params);
  run(workload);

  Result<Bytes> local = system_.local().read_file(params.doc);
  Result<Bytes> cloud = system_.server().fetch(params.doc);
  ASSERT_TRUE(local.is_ok());
  ASSERT_TRUE(cloud.is_ok()) << "doc missing on cloud";
  EXPECT_EQ(*local, *cloud);
  EXPECT_GT(local->size(), params.initial_bytes);

  // Transactional updates were recognized: deltas fired, and the uploaded
  // volume stayed well below saves × filesize.
  EXPECT_GE(system_.client().deltas_triggered(), params.saves - 1);
  EXPECT_LT(system_.traffic().up_bytes(),
            params.saves * params.initial_bytes / 2);
  EXPECT_EQ(system_.client().conflicts_acked(), 0u);
  // No temp or backup files leaked to the cloud.
  for (const std::string& path : system_.server().paths()) {
    EXPECT_EQ(path.find(".wrl"), std::string::npos) << path;
    EXPECT_EQ(path.find(".dft"), std::string::npos) << path;
  }
}

TEST_F(WorkloadTest, WeChatWorkloadSyncsExactContent) {
  WeChatParams params = WeChatParams::scaled();
  params.updates = 12;
  WeChatWorkload workload(params);
  const RunStats stats = run(workload);

  Result<Bytes> local = system_.local().read_file(params.db);
  Result<Bytes> cloud = system_.server().fetch(params.db);
  ASSERT_TRUE(local.is_ok());
  ASSERT_TRUE(cloud.is_ok());
  EXPECT_EQ(*local, *cloud);

  // In-place updates ride the NFS-like RPC path: traffic ~ update bytes,
  // not ~ file size.
  EXPECT_LT(system_.traffic().up_bytes(), params.initial_bytes / 2);
  EXPECT_GT(stats.update_bytes, 0u);
  // The journal ends truncated to zero on both sides.
  Result<FileStat> journal = system_.local().stat(params.journal);
  ASSERT_TRUE(journal.is_ok());
  EXPECT_EQ(journal->size, 0u);
}

TEST_F(WorkloadTest, PhotoThumbWorkloadPreservesCausalOrder) {
  PhotoThumbParams params;
  params.pairs = 3;
  PhotoThumbWorkload workload(params);
  run(workload);

  const auto& order = system_.server().arrival_order();
  const auto pos = [&](const std::string& p) {
    return std::find(order.begin(), order.end(), p) - order.begin();
  };
  for (std::uint32_t i = 0; i < params.pairs; ++i) {
    const std::string photo =
        params.dir + "/photo" + std::to_string(i) + ".jpg";
    const std::string thumb =
        params.dir + "/thumb" + std::to_string(i) + ".jpg";
    ASSERT_TRUE(system_.server().fetch(photo).is_ok());
    ASSERT_TRUE(system_.server().fetch(thumb).is_ok());
    EXPECT_LT(pos(photo), pos(thumb)) << "pair " << i;
  }
}

TEST_F(WorkloadTest, WorkloadsAreDeterministic) {
  AppendParams params = AppendParams::scaled();
  params.appends = 3;

  VirtualClock clock2;
  DeltaCfsSystem system2(clock2, CostProfile::pc(), NetProfile::pc_wan());
  system2.fs().mkdir("/sync");

  AppendWorkload w1(params);
  AppendWorkload w2(params);
  run_workload(w1, system_, clock_);
  run_workload(w2, system2, clock2);

  EXPECT_EQ(system_.traffic().up_bytes(), system2.traffic().up_bytes());
  EXPECT_EQ(system_.client().meter().units(), system2.client().meter().units());
  EXPECT_EQ(*system_.server().fetch(params.path),
            *system2.server().fetch(params.path));
}

// ---------------------------------------------------------------------------
// Filebench personalities
// ---------------------------------------------------------------------------

TEST(FilebenchTest, PersonalitiesRunAndMoveData) {
  VirtualClock clock;
  MemFs fs(clock);
  FlatCosts costs;

  for (const FilebenchConfig& config :
       {FilebenchConfig::fileserver(), FilebenchConfig::varmail(),
        FilebenchConfig::webserver()}) {
    FilebenchConfig small = config;
    small.iterations = 20;
    const FilebenchResult result = run_filebench(small, fs, costs);
    EXPECT_GT(result.data_bytes, 0u) << to_string(config.personality);
    EXPECT_GT(result.ops, 0u);
    EXPECT_GT(result.mbps, 0.0);
  }
}

TEST(FilebenchTest, HigherOpCostLowersThroughput) {
  struct SlowCosts final : OpCostModel {
    Duration cost(FbOp, std::uint64_t bytes) override {
      return 10 + static_cast<Duration>(bytes / 100);
    }
  };
  VirtualClock clock;
  MemFs fs1(clock);
  MemFs fs2(clock);
  FlatCosts flat;
  SlowCosts slow;

  FilebenchConfig config = FilebenchConfig::fileserver();
  config.iterations = 20;
  const FilebenchResult fast = run_filebench(config, fs1, flat);
  const FilebenchResult slow_result = run_filebench(config, fs2, slow);
  EXPECT_GT(fast.mbps, slow_result.mbps);
}

TEST(FilebenchTest, WebserverIsReadDominated) {
  VirtualClock clock;
  MemFs fs(clock);

  struct SplitCosts final : OpCostModel {
    std::uint64_t read_bytes = 0;
    std::uint64_t write_bytes = 0;
    Duration cost(FbOp op, std::uint64_t bytes) override {
      if (op == FbOp::read_op) read_bytes += bytes;
      if (op == FbOp::write_op) write_bytes += bytes;
      return 1;
    }
  };
  SplitCosts costs;
  FilebenchConfig config = FilebenchConfig::webserver();
  config.iterations = 30;
  run_filebench(config, fs, costs);
  EXPECT_GT(costs.read_bytes, 5 * costs.write_bytes);
}

}  // namespace
}  // namespace dcfs
