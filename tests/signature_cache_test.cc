#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>

#include "baselines/deltacfs_system.h"
#include "common/rng.h"
#include "core/signature_cache.h"
#include "proto/messages.h"
#include "rsyncx/delta.h"

namespace dcfs {
namespace {

proto::VersionId version(std::uint64_t counter) { return {1, counter}; }

/// A distinguishable weak-only signature (the cache stores weak-only ones).
rsyncx::Signature make_signature(std::uint64_t tag) {
  rsyncx::Signature signature;
  signature.block_size = 4096;
  signature.file_size = tag;
  signature.has_strong = false;
  signature.weak = {static_cast<std::uint32_t>(tag)};
  return signature;
}

TEST(SignatureCacheTest, MissThenHit) {
  SignatureCache cache(4);
  EXPECT_EQ(cache.get("/f", version(1)), nullptr);

  cache.put("/f", version(1), make_signature(11));
  const rsyncx::Signature* hit = cache.get("/f", version(1));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->file_size, 11u);

  // Same path, different version: distinct entry.
  EXPECT_EQ(cache.get("/f", version(2)), nullptr);
  // Different path, same version numbers: distinct entry.
  EXPECT_EQ(cache.get("/g", version(1)), nullptr);
}

TEST(SignatureCacheTest, PutReplacesExistingVersion) {
  SignatureCache cache(4);
  cache.put("/f", version(1), make_signature(11));
  cache.put("/f", version(1), make_signature(22));
  EXPECT_EQ(cache.size(), 1u);
  ASSERT_NE(cache.get("/f", version(1)), nullptr);
  EXPECT_EQ(cache.get("/f", version(1))->file_size, 22u);
}

TEST(SignatureCacheTest, EvictsLeastRecentlyUsed) {
  SignatureCache cache(2);
  cache.put("/a", version(1), make_signature(1));
  cache.put("/b", version(2), make_signature(2));
  cache.put("/c", version(3), make_signature(3));  // evicts /a
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.get("/a", version(1)), nullptr);
  EXPECT_NE(cache.get("/b", version(2)), nullptr);
  EXPECT_NE(cache.get("/c", version(3)), nullptr);
}

TEST(SignatureCacheTest, GetRefreshesRecency) {
  SignatureCache cache(2);
  cache.put("/a", version(1), make_signature(1));
  cache.put("/b", version(2), make_signature(2));
  ASSERT_NE(cache.get("/a", version(1)), nullptr);  // /a becomes MRU
  cache.put("/c", version(3), make_signature(3));   // evicts /b, not /a
  EXPECT_NE(cache.get("/a", version(1)), nullptr);
  EXPECT_EQ(cache.get("/b", version(2)), nullptr);
}

TEST(SignatureCacheTest, InvalidateDropsAllVersionsOfPath) {
  SignatureCache cache(8);
  cache.put("/f", version(1), make_signature(1));
  cache.put("/f", version(2), make_signature(2));
  cache.put("/g", version(3), make_signature(3));
  cache.invalidate("/f");
  EXPECT_EQ(cache.get("/f", version(1)), nullptr);
  EXPECT_EQ(cache.get("/f", version(2)), nullptr);
  EXPECT_NE(cache.get("/g", version(3)), nullptr);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(SignatureCacheTest, RenameMovesEntriesToNewPath) {
  SignatureCache cache(8);
  cache.put("/from", version(1), make_signature(1));
  cache.put("/from", version(2), make_signature(2));
  cache.on_rename("/from", "/to");
  EXPECT_EQ(cache.get("/from", version(1)), nullptr);
  EXPECT_NE(cache.get("/to", version(1)), nullptr);
  EXPECT_NE(cache.get("/to", version(2)), nullptr);
}

TEST(SignatureCacheTest, RenameKeepsExistingDestinationEntries) {
  // The vim flow renames a temp file over the real name; signatures already
  // cached under the destination (keyed by their own versions) must stay —
  // version keys are globally unique so the histories cannot collide.
  SignatureCache cache(8);
  cache.put("/to", version(1), make_signature(1));
  cache.put("/from", version(2), make_signature(2));
  cache.on_rename("/from", "/to");
  EXPECT_NE(cache.get("/to", version(1)), nullptr);
  EXPECT_NE(cache.get("/to", version(2)), nullptr);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(SignatureCacheTest, ZeroCapacityStoresNothing) {
  SignatureCache cache(0);
  cache.put("/f", version(1), make_signature(1));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.get("/f", version(1)), nullptr);
}

TEST(SignatureCacheTest, ClearEmptiesTheCache) {
  SignatureCache cache(8);
  cache.put("/f", version(1), make_signature(1));
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.get("/f", version(1)), nullptr);
}

/// End-to-end: a chain of transactional rewrites must hit the cache from
/// the second delta on, and hits must not change what reaches the cloud.
class SignatureCacheClientTest : public ::testing::Test {
 protected:
  SignatureCacheClientTest() { system_.fs().mkdir("/sync"); }

  void drain() {
    for (int i = 0; i < 50; ++i) {
      clock_.advance(milliseconds(200));
      system_.tick(clock_.now());
    }
    system_.finish(clock_.now());
  }

  /// The vim save flow: write a temp file, rename it over the target.
  void transactional_write(const std::string& path, ByteSpan content) {
    const std::string tmp = path + ".swp";
    ASSERT_TRUE(system_.fs().write_file(tmp, content).is_ok());
    ASSERT_TRUE(system_.fs().rename(tmp, path).is_ok());
  }

  static ClientConfig config() {
    ClientConfig cfg;
    cfg.delta_block_size = 512;
    return cfg;
  }

  VirtualClock clock_;
  DeltaCfsSystem system_{clock_, CostProfile::pc(), NetProfile::pc_wan(),
                         config()};
};

TEST_F(SignatureCacheClientTest, TransactionalRewriteChainHitsCache) {
  Rng rng(21);
  Bytes content = rng.bytes(100'000);
  ASSERT_TRUE(system_.fs().write_file("/sync/doc", content).is_ok());
  drain();
  EXPECT_EQ(system_.client().signature_cache_hits(), 0u);

  for (int round = 0; round < 3; ++round) {
    content.insert(content.begin() + 50'000,
                   static_cast<std::uint8_t>(42 + round));
    transactional_write("/sync/doc", content);
    drain();
  }
  // Every delta after the first can reuse the signature advanced from the
  // previous round.
  EXPECT_GT(system_.client().signature_cache_hits(), 0u);
  Result<Bytes> cloud = system_.server().fetch("/sync/doc");
  ASSERT_TRUE(cloud.is_ok());
  EXPECT_EQ(*cloud, content);
}

TEST_F(SignatureCacheClientTest, WritesInvalidateCachedSignatures) {
  Rng rng(22);
  Bytes content = rng.bytes(100'000);
  ASSERT_TRUE(system_.fs().write_file("/sync/doc", content).is_ok());
  drain();

  // An in-place write mutates the synced content, so the cached signature
  // for the old version must be dropped: the next transactional rewrite
  // starts from a fresh signature pass (a miss, not a stale hit).
  const std::uint64_t hits_before = system_.client().signature_cache_hits();
  Result<FileHandle> handle = system_.fs().open("/sync/doc");
  ASSERT_TRUE(handle.is_ok());
  const Bytes patch = rng.bytes(1000);
  system_.fs().write(*handle, 10'000, patch);
  system_.fs().close(*handle);
  drain();

  content.insert(content.begin() + 50'000, 42);
  std::copy(patch.begin(), patch.end(), content.begin() + 10'000);
  transactional_write("/sync/doc", content);
  drain();
  EXPECT_EQ(system_.client().signature_cache_hits(), hits_before);
  EXPECT_GT(system_.client().signature_cache_misses(), 0u);
  Result<Bytes> cloud = system_.server().fetch("/sync/doc");
  ASSERT_TRUE(cloud.is_ok());
  EXPECT_EQ(*cloud, content);
}

}  // namespace
}  // namespace dcfs
