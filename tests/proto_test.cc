#include <gtest/gtest.h>

#include "common/rng.h"
#include "proto/messages.h"

namespace dcfs::proto {
namespace {

SyncRecord sample_record() {
  SyncRecord record;
  record.sequence = 42;
  record.kind = OpKind::file_delta;
  record.path = "/sync/report.doc";
  record.path2 = "/sync/report.doc.wrl0";
  record.offset = 0;
  record.size = 0;
  record.payload = to_bytes("delta-bytes");
  record.base_version = {3, 17};
  record.new_version = {3, 18};
  record.txn_group = 7;
  record.txn_last = true;
  record.base_deleted = true;
  return record;
}

TEST(ProtoTest, RecordRoundTrip) {
  const SyncRecord record = sample_record();
  Result<SyncRecord> decoded = decode_record(encode(record));
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(*decoded, record);
}

TEST(ProtoTest, RecordWithEmptyFieldsRoundTrips) {
  SyncRecord record;
  record.kind = OpKind::create;
  record.path = "/f";
  Result<SyncRecord> decoded = decode_record(encode(record));
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(*decoded, record);
}

TEST(ProtoTest, RecordWithBinaryPayloadRoundTrips) {
  Rng rng(31);
  SyncRecord record;
  record.kind = OpKind::write;
  record.path = "/sync/chat.db";
  record.payload = rng.bytes(100'000);
  record.new_version = {1, 1};
  Result<SyncRecord> decoded = decode_record(encode(record));
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(*decoded, record);
}

TEST(ProtoTest, TruncatedRecordFails) {
  Bytes wire = encode(sample_record());
  for (const std::size_t cut : {0u, 1u, 8u, 9u, 20u}) {
    if (cut < wire.size()) {
      EXPECT_FALSE(
          decode_record(ByteSpan{wire.data(), cut}).is_ok())
          << "prefix length " << cut;
    }
  }
  wire.resize(wire.size() - 1);
  EXPECT_FALSE(decode_record(wire).is_ok());
}

TEST(ProtoTest, AckRoundTrip) {
  Ack ack;
  ack.sequence = 9;
  ack.result = Errc::conflict;
  ack.server_version = {2, 5};
  ack.conflict_path = "/sync/f.conflict-2";
  Result<Ack> decoded = decode_ack(encode(ack));
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(*decoded, ack);
}

TEST(ProtoTest, AckTruncationFails) {
  const Bytes wire = encode(Ack{});
  EXPECT_FALSE(decode_ack(ByteSpan{wire.data(), 5}).is_ok());
}

TEST(ProtoTest, TraceIdRoundTripsOnRecordAndAck) {
  SyncRecord record = sample_record();
  record.trace_id = (7ull << 40) | 12345;
  Result<SyncRecord> decoded = decode_record(encode(record));
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded->trace_id, record.trace_id);
  EXPECT_EQ(*decoded, record);

  Ack ack;
  ack.sequence = 9;
  ack.trace_id = record.trace_id;
  Result<Ack> back = decode_ack(encode(ack));
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back->trace_id, ack.trace_id);
}

TEST(ProtoTest, FlowIdHelpersAreInvolutive) {
  const std::uint64_t id = (3ull << 40) | 99;
  // The edge-tag bits must be distinct, strippable, and leave the base id
  // untouched (the client's counter never reaches bit 62).
  EXPECT_NE(ack_flow_id(id), id);
  EXPECT_NE(forward_flow_id(id), id);
  EXPECT_NE(ack_flow_id(id), forward_flow_id(id));
  EXPECT_EQ(base_trace_id(ack_flow_id(id)), id);
  EXPECT_EQ(base_trace_id(forward_flow_id(id)), id);
  EXPECT_EQ(base_trace_id(id), id);
}

TEST(ProtoTest, SegmentsRoundTrip) {
  Rng rng(32);
  std::vector<Segment> segments;
  segments.push_back({0, rng.bytes(100)});
  segments.push_back({4096, rng.bytes(4096)});
  segments.push_back({1 << 20, rng.bytes(1)});
  Result<std::vector<Segment>> decoded =
      decode_segments(encode_segments(segments));
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(*decoded, segments);
}

TEST(ProtoTest, EmptySegmentListRoundTrips) {
  Result<std::vector<Segment>> decoded = decode_segments(encode_segments({}));
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_TRUE(decoded->empty());
}

TEST(ProtoTest, SegmentsTruncationFails) {
  std::vector<Segment> segments{{0, to_bytes("abcdef")}};
  Bytes wire = encode_segments(segments);
  wire.resize(wire.size() - 2);
  EXPECT_FALSE(decode_segments(wire).is_ok());
  EXPECT_FALSE(decode_segments(Bytes{1}).is_ok());
}

TEST(ProtoTest, VersionIdBasics) {
  const VersionId a{1, 2};
  const VersionId b{1, 2};
  const VersionId c{2, 2};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_TRUE(VersionId{}.is_null());
  EXPECT_FALSE(a.is_null());
  EXPECT_EQ(to_string(a), "<1,2>");
}

TEST(ProtoTest, OpKindNames) {
  EXPECT_EQ(to_string(OpKind::write), "write");
  EXPECT_EQ(to_string(OpKind::file_delta), "file_delta");
  EXPECT_EQ(to_string(OpKind::rename), "rename");
  EXPECT_EQ(to_string(OpKind::record_bundle), "record_bundle");
}

TEST(ProtoTest, BundleRoundTrip) {
  std::vector<SyncRecord> members;
  members.push_back(sample_record());
  SyncRecord small;
  small.sequence = 43;
  small.kind = OpKind::create;
  small.path = "/sync/new";
  small.new_version = {2, 1};
  members.push_back(small);
  Result<std::vector<SyncRecord>> decoded =
      decode_bundle(encode_bundle(members));
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(*decoded, members);
}

TEST(ProtoTest, EmptyBundleRoundTrips) {
  Result<std::vector<SyncRecord>> decoded = decode_bundle(encode_bundle({}));
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_TRUE(decoded->empty());
}

TEST(ProtoTest, NestedBundleRejected) {
  SyncRecord inner;
  inner.kind = OpKind::create;
  inner.path = "/f";
  SyncRecord nested;
  nested.kind = OpKind::record_bundle;
  nested.path = "/bundle";
  nested.payload = encode_bundle({inner});
  EXPECT_FALSE(decode_bundle(encode_bundle({nested})).is_ok());
}

TEST(ProtoTest, TruncatedBundleFails) {
  const Bytes wire = encode_bundle({sample_record(), sample_record()});
  for (std::size_t cut = 0; cut < wire.size(); cut += 7) {
    EXPECT_FALSE(decode_bundle(ByteSpan{wire.data(), cut}).is_ok())
        << "prefix length " << cut;
  }
}

}  // namespace
}  // namespace dcfs::proto
