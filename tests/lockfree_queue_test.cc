#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "core/lockfree_queue.h"

namespace dcfs {
namespace {

TEST(LockFreeQueueTest, FifoSingleThread) {
  LockFreeQueue<int> queue;
  EXPECT_TRUE(queue.empty());
  EXPECT_FALSE(queue.pop().has_value());

  for (int i = 0; i < 100; ++i) queue.push(i);
  EXPECT_FALSE(queue.empty());
  for (int i = 0; i < 100; ++i) {
    auto value = queue.pop();
    ASSERT_TRUE(value.has_value());
    EXPECT_EQ(*value, i);
  }
  EXPECT_TRUE(queue.empty());
}

TEST(LockFreeQueueTest, MoveOnlyValues) {
  LockFreeQueue<std::unique_ptr<int>> queue;
  queue.push(std::make_unique<int>(7));
  auto value = queue.pop();
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(**value, 7);
}

TEST(LockFreeQueueTest, InterleavedPushPop) {
  LockFreeQueue<int> queue;
  int next_expected = 0;
  for (int i = 0; i < 1000; ++i) {
    queue.push(i);
    if (i % 3 == 0) {
      auto value = queue.pop();
      ASSERT_TRUE(value.has_value());
      EXPECT_EQ(*value, next_expected++);
    }
  }
  while (auto value = queue.pop()) EXPECT_EQ(*value, next_expected++);
  EXPECT_EQ(next_expected, 1000);
}

TEST(LockFreeQueueTest, MultiProducerSingleConsumerStress) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 20'000;
  LockFreeQueue<std::pair<int, int>> queue;  // (producer, sequence)
  std::atomic<bool> done{false};

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (int i = 0; i < kPerProducer; ++i) queue.push({p, i});
    });
  }

  std::vector<int> next_from(kProducers, 0);
  std::uint64_t received = 0;
  std::thread consumer([&] {
    while (received < kProducers * kPerProducer) {
      if (auto value = queue.pop()) {
        const auto [producer, sequence] = *value;
        // Per-producer FIFO must hold even under contention.
        ASSERT_EQ(sequence, next_from[producer]);
        ++next_from[producer];
        ++received;
      } else if (done.load() && queue.empty() &&
                 received == kProducers * kPerProducer) {
        break;
      }
    }
  });

  for (auto& producer : producers) producer.join();
  done.store(true);
  consumer.join();

  EXPECT_EQ(received, kProducers * kPerProducer);
  for (int p = 0; p < kProducers; ++p) EXPECT_EQ(next_from[p], kPerProducer);
  EXPECT_TRUE(queue.empty());
}

TEST(LockFreeQueueTest, DestructionReleasesPendingNodes) {
  // ASAN/valgrind-style check: destroying a non-empty queue must not leak
  // or double-free (exercised implicitly by running under ctest).
  auto queue = std::make_unique<LockFreeQueue<std::string>>();
  for (int i = 0; i < 100; ++i) queue->push(std::string(1000, 'x'));
  queue->pop();
  queue.reset();
}

}  // namespace
}  // namespace dcfs
