// Tests for the extension features: upload compression, snapshot-mode
// causality, server version history, hard-link fan-out, the
// safe_to_replace guard, and merge-assisted conflict resolution.
#include <gtest/gtest.h>

#include "baselines/deltacfs_system.h"
#include "common/rng.h"
#include "merge/merge3.h"

namespace dcfs {
namespace {

void drive(DeltaCfsSystem& system, VirtualClock& clock,
           Duration duration = seconds(10)) {
  for (Duration t = 0; t < duration; t += milliseconds(200)) {
    clock.advance(milliseconds(200));
    system.tick(clock.now());
  }
  system.finish(clock.now());
  system.tick(clock.now());
}

// ---------------------------------------------------------------------------
// Upload compression
// ---------------------------------------------------------------------------

TEST(CompressionTest, CompressedUploadsRoundTripAndShrink) {
  Rng rng(1);
  const Bytes text = rng.text(500'000);

  auto run = [&](bool compress) {
    VirtualClock clock;
    ClientConfig config;
    config.compress_uploads = compress;
    DeltaCfsSystem system(clock, CostProfile::pc(), NetProfile::pc_wan(),
                          config);
    system.fs().mkdir("/sync");
    system.fs().write_file("/sync/log.txt", text);
    drive(system, clock);
    EXPECT_EQ(*system.server().fetch("/sync/log.txt"), text);
    return system.traffic().up_bytes();
  };

  const std::uint64_t plain = run(false);
  const std::uint64_t packed = run(true);
  EXPECT_LT(packed, plain / 2);  // log text compresses well
}

TEST(CompressionTest, IncompressiblePayloadShipsUncompressed) {
  Rng rng(2);
  const Bytes noise = rng.bytes(200'000);
  VirtualClock clock;
  ClientConfig config;
  config.compress_uploads = true;
  DeltaCfsSystem system(clock, CostProfile::pc(), NetProfile::pc_wan(),
                        config);
  system.fs().mkdir("/sync");
  system.fs().write_file("/sync/blob", noise);
  drive(system, clock);
  EXPECT_EQ(*system.server().fetch("/sync/blob"), noise);
  // Random bytes don't shrink: wire size stays ~payload size.
  EXPECT_GE(system.traffic().up_bytes(), noise.size());
}

TEST(CompressionTest, CompressedDeltaFlowsStillWork) {
  Rng rng(3);
  VirtualClock clock;
  ClientConfig config;
  config.compress_uploads = true;
  DeltaCfsSystem system(clock, CostProfile::pc(), NetProfile::pc_wan(),
                        config);
  system.fs().mkdir("/sync");

  Bytes content = rng.text(300'000);
  system.fs().write_file("/sync/doc", content);
  drive(system, clock);

  content[1000] ^= 0x55;
  system.fs().rename("/sync/doc", "/sync/doc.bak");
  system.fs().write_file("/sync/doc.tmp", content);
  system.fs().rename("/sync/doc.tmp", "/sync/doc");
  system.fs().unlink("/sync/doc.bak");
  drive(system, clock);

  EXPECT_EQ(*system.server().fetch("/sync/doc"), content);
  EXPECT_EQ(system.client().deltas_triggered(), 1u);
  EXPECT_EQ(system.client().errors_acked(), 0u);
}

// ---------------------------------------------------------------------------
// Snapshot causality mode
// ---------------------------------------------------------------------------

TEST(SnapshotModeTest, ContentStillConverges) {
  Rng rng(4);
  VirtualClock clock;
  ClientConfig config;
  config.causality = CausalityMode::snapshot;
  config.snapshot_interval = seconds(2);
  DeltaCfsSystem system(clock, CostProfile::pc(), NetProfile::pc_wan(),
                        config);
  system.fs().mkdir("/sync");

  Bytes content = rng.bytes(100'000);
  system.fs().write_file("/sync/doc", content);
  drive(system, clock);

  // Fast transactional update (entirely within one snapshot window).
  content[5] ^= 1;
  system.fs().rename("/sync/doc", "/sync/doc.bak");
  system.fs().write_file("/sync/doc.tmp", content);
  system.fs().rename("/sync/doc.tmp", "/sync/doc");
  system.fs().unlink("/sync/doc.bak");
  drive(system, clock);

  EXPECT_EQ(*system.server().fetch("/sync/doc"), content);
  EXPECT_EQ(system.client().errors_acked(), 0u);
  EXPECT_EQ(system.client().conflicts_acked(), 0u);
}

TEST(SnapshotModeTest, CausalOrderPreserved) {
  VirtualClock clock;
  ClientConfig config;
  config.causality = CausalityMode::snapshot;
  DeltaCfsSystem system(clock, CostProfile::pc(), NetProfile::pc_wan(),
                        config);
  system.fs().mkdir("/sync");
  system.fs().write_file("/sync/a", to_bytes("A"));
  system.fs().write_file("/sync/b", to_bytes("B"));
  drive(system, clock);

  const auto& order = system.server().arrival_order();
  const auto pos = [&](const std::string& p) {
    return std::find(order.begin(), order.end(), p) - order.begin();
  };
  EXPECT_LT(pos("/sync/a"), pos("/sync/b"));
}

// ---------------------------------------------------------------------------
// Server version history (§III-C)
// ---------------------------------------------------------------------------

TEST(VersionHistoryTest, RecentVersionsRetrievable) {
  VirtualClock clock;
  DeltaCfsSystem system(clock, CostProfile::pc(), NetProfile::pc_wan());
  system.fs().mkdir("/sync");

  std::vector<Bytes> generations;
  for (int i = 0; i < 3; ++i) {
    Bytes content = to_bytes("generation " + std::to_string(i) + "\n");
    system.fs().write_file("/sync/f", content);
    drive(system, clock, seconds(6));
    generations.push_back(std::move(content));
  }

  const auto versions = system.server().history("/sync/f");
  ASSERT_GE(versions.size(), 3u);
  // Newest first: the current version matches the latest write.
  EXPECT_EQ(*system.server().fetch_version("/sync/f", versions[0]),
            generations[2]);
  // Walk back through history: earlier generations are still there.
  bool found_gen0 = false;
  for (const auto& version : versions) {
    Result<Bytes> content = system.server().fetch_version("/sync/f", version);
    ASSERT_TRUE(content.is_ok());
    if (*content == generations[0]) found_gen0 = true;
  }
  EXPECT_TRUE(found_gen0);

  EXPECT_FALSE(
      system.server().fetch_version("/sync/f", {99, 99}).is_ok());
  EXPECT_TRUE(system.server().history("/missing").empty());
}

// ---------------------------------------------------------------------------
// Hard links
// ---------------------------------------------------------------------------

TEST(HardLinkTest, WriteThroughOneNameSyncsAllNames) {
  VirtualClock clock;
  DeltaCfsSystem system(clock, CostProfile::pc(), NetProfile::pc_wan());
  system.fs().mkdir("/sync");

  system.fs().write_file("/sync/a", to_bytes("shared-content"));
  ASSERT_TRUE(system.fs().link("/sync/a", "/sync/b").is_ok());
  drive(system, clock);
  EXPECT_EQ(as_text(*system.server().fetch("/sync/b")), "shared-content");

  // Write through `a`: the cloud copy of `b` must follow (shared inode).
  Result<FileHandle> handle = system.fs().open("/sync/a");
  system.fs().write(*handle, 0, to_bytes("SHARED"));
  system.fs().close(*handle);
  drive(system, clock);

  EXPECT_EQ(as_text(ByteSpan{system.server().fetch("/sync/a")->data(), 6}),
            "SHARED");
  EXPECT_EQ(as_text(ByteSpan{system.server().fetch("/sync/b")->data(), 6}),
            "SHARED");
}

TEST(HardLinkTest, RenameBreaksTheGroupForTheReplacedName) {
  VirtualClock clock;
  DeltaCfsSystem system(clock, CostProfile::pc(), NetProfile::pc_wan());
  system.fs().mkdir("/sync");

  system.fs().write_file("/sync/a", to_bytes("old"));
  system.fs().link("/sync/a", "/sync/backup");
  system.fs().write_file("/sync/new", to_bytes("NEW"));
  system.fs().rename("/sync/new", "/sync/a");  // a now a fresh inode
  drive(system, clock);

  EXPECT_EQ(as_text(*system.server().fetch("/sync/a")), "NEW");
  EXPECT_EQ(as_text(*system.server().fetch("/sync/backup")), "old");

  // Writes to the fresh `a` must not leak into `backup` anymore.
  Result<FileHandle> handle = system.fs().open("/sync/a");
  system.fs().write(*handle, 0, to_bytes("XYZ"));
  system.fs().close(*handle);
  drive(system, clock);
  EXPECT_EQ(as_text(*system.server().fetch("/sync/backup")), "old");
}

// ---------------------------------------------------------------------------
// safe_to_replace guard
// ---------------------------------------------------------------------------

TEST(SafeToReplaceTest, BlocksWhenLaterNodesDependOnThePath) {
  SyncQueue queue(seconds(3));
  queue.add_write("/f", 0, to_bytes("data"), 0);
  queue.pack("/f");
  SyncNode* node = queue.find_write_node("/f");
  ASSERT_NE(node, nullptr);
  EXPECT_TRUE(queue.safe_to_replace(*node, 0));

  // A later link referencing /f blocks replacement...
  SyncNode link;
  link.kind = proto::OpKind::link;
  link.path = "/f";
  link.path2 = "/f2";
  const std::uint64_t link_seq = queue.enqueue(std::move(link), 0);
  EXPECT_FALSE(queue.safe_to_replace(*node, 0));
  // ...unless it is the explicitly allowed trigger node.
  EXPECT_TRUE(queue.safe_to_replace(*node, link_seq));
}

TEST(SafeToReplaceTest, PinnedNodesNeverReplaceable) {
  SyncQueue queue(seconds(3));
  queue.add_write("/f", 0, to_bytes("data"), 0);
  SyncNode* node = queue.find_write_node("/f");
  ASSERT_NE(node, nullptr);
  node->pinned = true;
  EXPECT_FALSE(queue.safe_to_replace(*node, 0));
}

// ---------------------------------------------------------------------------
// Conflict resolution with merge3 (the full loop)
// ---------------------------------------------------------------------------

TEST(ConflictMergeTest, ConflictCopyMergesBackCleanly) {
  // One client, but we simulate the divergence with a stale-base write to
  // produce a conflict copy, then merge it with merge3 and recover.
  VirtualClock clock;
  DeltaCfsSystem system(clock, CostProfile::pc(), NetProfile::pc_wan());
  system.fs().mkdir("/sync");

  const std::string base_text = "alpha\nbeta\ngamma\n";
  system.fs().write_file("/sync/notes", to_bytes(base_text));
  drive(system, clock);
  const auto base_version = system.server().version("/sync/notes");
  ASSERT_TRUE(base_version.has_value());

  // Main line advances (edit gamma).
  system.fs().write_file("/sync/notes", to_bytes("alpha\nbeta\nGAMMA\n"));
  drive(system, clock);

  // A stale increment arrives (another device's edit of alpha against the
  // original base): first write wins, conflict copy materializes.
  proto::SyncRecord stale;
  stale.kind = proto::OpKind::full_file;
  stale.path = "/sync/notes";
  stale.payload = to_bytes("ALPHA\nbeta\ngamma\n");
  stale.base_version = *base_version;
  stale.new_version = {9, 1};
  // full_file records apply unconditionally; use a write to trip the
  // version check instead.
  proto::SyncRecord stale_write;
  stale_write.kind = proto::OpKind::write;
  stale_write.path = "/sync/notes";
  stale_write.payload =
      proto::encode_segments({{0, to_bytes("ALPHA")}});
  stale_write.base_version = *base_version;
  stale_write.new_version = {9, 1};
  const proto::Ack ack = system.server().apply_record(9, stale_write);
  ASSERT_EQ(ack.result, Errc::conflict);
  ASSERT_FALSE(ack.conflict_path.empty());

  // Resolve: three-way merge of base, main line, and the conflict copy.
  Result<Bytes> base = system.server().fetch_version("/sync/notes",
                                                     *base_version);
  ASSERT_TRUE(base.is_ok());
  Result<Bytes> ours = system.server().fetch("/sync/notes");
  Result<Bytes> theirs = system.server().fetch(ack.conflict_path);
  ASSERT_TRUE(ours.is_ok());
  ASSERT_TRUE(theirs.is_ok());

  const merge::MergeResult merged = merge::merge3(*base, *ours, *theirs);
  EXPECT_TRUE(merged.clean);
  EXPECT_EQ(as_text(merged.content), "ALPHA\nbeta\nGAMMA\n");

  // Push the resolution back through the normal sync path.
  system.fs().write_file("/sync/notes", merged.content);
  drive(system, clock);
  EXPECT_EQ(as_text(*system.server().fetch("/sync/notes")),
            "ALPHA\nbeta\nGAMMA\n");
}

// ---------------------------------------------------------------------------
// Server rejection log
// ---------------------------------------------------------------------------

TEST(RejectionLogTest, RecordsUnappliableRecords) {
  CloudServer server(CostProfile::pc());
  proto::SyncRecord bogus;
  bogus.kind = proto::OpKind::unlink;
  bogus.path = "/never-existed";
  const proto::Ack ack = server.apply_record(1, bogus);
  EXPECT_EQ(ack.result, Errc::not_found);
  ASSERT_EQ(server.rejections().size(), 1u);
  EXPECT_EQ(server.rejections()[0].path, "/never-existed");
  EXPECT_EQ(server.rejections()[0].result, Errc::not_found);
}

}  // namespace
}  // namespace dcfs
