// Decoder robustness: every wire-facing decoder must reject arbitrary and
// mutated byte strings gracefully — an error Status, never a crash, hang,
// or out-of-bounds read.  (Run under ASan/valgrind for full effect; the
// assertions here catch accepted-garbage bugs.)
#include <gtest/gtest.h>

#include "common/rng.h"
#include "compress/lz.h"
#include "proto/messages.h"
#include "rsyncx/delta.h"
#include "server/cloud_server.h"
#include "wire/wire.h"

namespace dcfs {
namespace {

class FuzzSeedTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSeedTest, RandomBytesNeverCrashDecoders) {
  Rng rng(GetParam());
  wire::Codec codec;
  for (int round = 0; round < 200; ++round) {
    const Bytes junk = rng.bytes(rng.next_below(512));
    (void)proto::decode_record(junk);
    (void)proto::decode_ack(junk);
    (void)proto::decode_segments(junk);
    (void)proto::decode_stream_credit(junk);
    (void)rsyncx::decode_delta(junk);
    (void)lz::decompress(junk);
    (void)codec.decode(Bytes(junk));
  }
}

TEST_P(FuzzSeedTest, LzRoundTripProperty) {
  Rng rng(GetParam() + 4000);
  for (int round = 0; round < 40; ++round) {
    const std::size_t size = rng.next_below(64 * 1024);
    const Bytes input =
        rng.next_below(2) == 0 ? rng.text(size) : rng.bytes(size);

    // compress / compress_into / compressed_size agree byte-for-byte.
    const Bytes compressed = lz::compress(input);
    Bytes into;
    lz::compress_into(input, into);
    ASSERT_EQ(into, compressed);
    ASSERT_EQ(lz::compressed_size(input), compressed.size());
    ASSERT_LE(compressed.size(), lz::max_compressed_size(input.size()));

    Result<Bytes> out = lz::decompress(compressed);
    ASSERT_TRUE(out.is_ok());
    ASSERT_EQ(*out, input);
  }
}

TEST_P(FuzzSeedTest, MutatedLzStreamsNeverCrash) {
  Rng rng(GetParam() + 5000);
  const Bytes input = rng.text(8192);
  const Bytes valid = lz::compress(input);

  for (int round = 0; round < 300; ++round) {
    Bytes mutated = valid;
    const int flips = 1 + static_cast<int>(rng.next_below(4));
    for (int i = 0; i < flips; ++i) {
      mutated[rng.next_below(mutated.size())] ^=
          static_cast<std::uint8_t>(1 + rng.next_below(255));
    }
    if (rng.next_below(3) == 0) {
      mutated.resize(rng.next_below(mutated.size() + 1));
    }
    // Either a clean corruption error or a decode bounded by the cap —
    // never a crash, never unbounded output.
    Bytes out;
    const Status status = lz::decompress_into(mutated, out, 1 << 20);
    if (!status.is_ok()) EXPECT_EQ(status.code(), Errc::corruption);
  }
}

TEST(LzCorruptionTest, HandCraftedStreamsAreRejected) {
  // Truncated header: a token byte promising literals that never arrive.
  EXPECT_EQ(lz::decompress(Bytes{0xF0}).code(), Errc::corruption);
  // Literal run length extension cut off mid-varint.
  EXPECT_EQ(lz::decompress(Bytes{0xF0, 0xFF}).code(), Errc::corruption);
  // Match with a zero offset (points before the output start).
  EXPECT_EQ(lz::decompress(Bytes{0x04, 0x00, 0x00}).code(),
            Errc::corruption);
  // Match offset past everything decoded so far.
  EXPECT_EQ(lz::decompress(Bytes{0x14, 'x', 0xFF, 0xFF}).code(),
            Errc::corruption);
  // Match length truncated before its extension bytes.
  EXPECT_EQ(lz::decompress(Bytes{0x1F, 'x', 0x01, 0x00}).code(),
            Errc::corruption);
}

TEST(LzCorruptionTest, OversizedLengthClaimIsRejectedBeforeAllocating) {
  // A valid stream for 1 MiB of 'a'; a receiver capping output at 4 KiB
  // must reject it with a corruption error instead of inflating it.
  const Bytes big(1 << 20, 'a');
  const Bytes compressed = lz::compress(big);
  Bytes out;
  const Status capped = lz::decompress_into(compressed, out, 4096);
  ASSERT_FALSE(capped.is_ok());
  EXPECT_EQ(capped.code(), Errc::corruption);
  EXPECT_LE(out.capacity(), 1u << 16);  // the claim never drove allocation

  // A literal-run claim far past the actual input dies cleanly too.
  Bytes absurd{0xF0};
  for (int i = 0; i < 64; ++i) absurd.push_back(0xFF);
  absurd.push_back(0x00);
  EXPECT_EQ(lz::decompress(absurd).code(), Errc::corruption);
}

TEST_P(FuzzSeedTest, MutatedValidRecordsNeverCrash) {
  Rng rng(GetParam() + 1000);

  proto::SyncRecord record;
  record.kind = proto::OpKind::write;
  record.path = "/sync/some/file";
  record.path2 = "/sync/other";
  record.payload = proto::encode_segments({{64, rng.bytes(200)}});
  record.base_version = {1, 41};
  record.new_version = {1, 42};
  const Bytes valid = proto::encode(record);

  for (int round = 0; round < 500; ++round) {
    Bytes mutated = valid;
    // Flip 1-4 random bytes and/or truncate.
    const int flips = 1 + static_cast<int>(rng.next_below(4));
    for (int i = 0; i < flips; ++i) {
      mutated[rng.next_below(mutated.size())] ^=
          static_cast<std::uint8_t>(1 + rng.next_below(255));
    }
    if (rng.next_below(3) == 0) {
      mutated.resize(rng.next_below(mutated.size() + 1));
    }
    Result<proto::SyncRecord> decoded = proto::decode_record(mutated);
    if (decoded.is_ok()) {
      // Accepted mutations must still produce internally consistent
      // records (payload length fields were validated).
      (void)proto::decode_segments(decoded->payload);
    }
  }
}

TEST_P(FuzzSeedTest, MutatedDeltasNeverCorruptApply) {
  Rng rng(GetParam() + 2000);
  const Bytes base = rng.bytes(20'000);
  Bytes target = base;
  target[100] ^= 1;
  const Bytes valid = rsyncx::encode_delta(
      rsyncx::compute_delta_local(base, target, 4096, nullptr));

  for (int round = 0; round < 300; ++round) {
    Bytes mutated = valid;
    mutated[rng.next_below(mutated.size())] ^=
        static_cast<std::uint8_t>(1 + rng.next_below(255));
    Result<rsyncx::Delta> decoded = rsyncx::decode_delta(mutated);
    if (!decoded) continue;
    // A decodable mutation may still describe an invalid patch; apply must
    // fail cleanly or produce a size-consistent result.
    Result<Bytes> applied = rsyncx::apply_delta(base, *decoded);
    if (applied.is_ok()) {
      EXPECT_EQ(applied->size(), decoded->target_size);
    }
  }
}

TEST_P(FuzzSeedTest, ServerSurvivesGarbageFrames) {
  Rng rng(GetParam() + 3000);
  CloudServer server(CostProfile::pc());
  Transport transport(NetProfile::pc_wan());
  server.attach(1, transport);

  for (int round = 0; round < 100; ++round) {
    transport.client_send(rng.bytes(1 + rng.next_below(300)));
  }
  server.pump();
  // Every frame produced an ack (mostly corruption errors), none crashed.
  std::size_t acks = 0;
  while (transport.client_poll()) ++acks;
  EXPECT_EQ(acks, 100u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeedTest,
                         ::testing::Values(1, 2, 3, 4, 5));

// ---------------------------------------------------------------------------
// Chunk-stream framing (docs/PROTOCOL.md §chunk streams): a malicious or
// broken client must never wedge the server — every violation earns a
// corruption ack, the stage is dropped, and unrelated streams keep working.

class StreamFrameTest : public ::testing::Test {
 protected:
  CloudServer server_{CostProfile::pc()};
  Transport transport_{NetProfile::pc_wan()};

  void SetUp() override { server_.attach(1, transport_); }

  proto::SyncRecord stream_record(proto::OpKind kind, std::uint64_t id) {
    proto::SyncRecord r;
    r.kind = kind;
    r.sequence = id;
    return r;
  }

  void send(const proto::SyncRecord& r) {
    transport_.client_send(proto::encode(r));
  }

  void open_stream(std::uint64_t id, const std::string& path,
                   std::uint64_t total, std::uint64_t window = 4096) {
    proto::SyncRecord open = stream_record(proto::OpKind::stream_open, id);
    open.path = path;
    open.new_version = {1, 1};
    open.offset = window;  // advertised window
    open.size = total;
    send(open);
  }

  void send_chunk(std::uint64_t id, std::uint64_t offset,
                  std::uint64_t ordinal, Bytes payload) {
    proto::SyncRecord chunk = stream_record(proto::OpKind::stream_chunk, id);
    chunk.offset = offset;
    chunk.size = ordinal;
    chunk.payload = std::move(payload);
    send(chunk);
  }

  void commit_stream(std::uint64_t id, const std::string& path,
                     std::uint64_t total) {
    proto::SyncRecord commit =
        stream_record(proto::OpKind::stream_commit, id);
    commit.path = path;
    commit.new_version = {1, 1};
    commit.size = total;
    send(commit);
  }

  struct Drained {
    std::size_t acks_ok = 0;
    std::size_t acks_error = 0;
    std::size_t credits = 0;
  };

  Drained drain_downstream() {
    Drained d;
    while (std::optional<Bytes> frame = transport_.client_poll()) {
      if (frame->empty()) continue;
      const ByteSpan body{frame->data() + 1, frame->size() - 1};
      if ((*frame)[0] == 1) {
        const Result<proto::Ack> ack = proto::decode_ack(body);
        if (ack.is_ok() && ack->result == Errc::ok) {
          ++d.acks_ok;
        } else {
          ++d.acks_error;
        }
      } else if ((*frame)[0] == 4) {
        EXPECT_TRUE(proto::decode_stream_credit(body).is_ok());
        ++d.credits;
      }
    }
    return d;
  }
};

TEST_F(StreamFrameTest, TruncatedStreamCreditIsRejected) {
  proto::StreamCredit credit;
  credit.stream_id = 7;
  credit.bytes = 65536;
  const Bytes valid = proto::encode(credit);
  const Result<proto::StreamCredit> roundtrip =
      proto::decode_stream_credit(valid);
  ASSERT_TRUE(roundtrip.is_ok());
  EXPECT_EQ(*roundtrip, credit);
  for (std::size_t len = 0; len < valid.size(); ++len) {
    EXPECT_FALSE(
        proto::decode_stream_credit(ByteSpan{valid.data(), len}).is_ok())
        << "truncation to " << len << " bytes was accepted";
  }
}

TEST_F(StreamFrameTest, OpenWithoutCommitStaysStagedAndAppliesNothing) {
  open_stream(1, "/sync/partial", 4096);
  send_chunk(1, 0, 0, Bytes(1024, 'a'));
  send_chunk(1, 1024, 1, Bytes(1024, 'b'));
  server_.pump();

  // The truncated stream stays staged: nothing applied, nothing fetchable.
  EXPECT_EQ(server_.records_applied(), 0u);
  EXPECT_EQ(server_.streams_active(), 1u);
  EXPECT_FALSE(server_.fetch("/sync/partial").is_ok());
  const Drained d = drain_downstream();
  EXPECT_EQ(d.acks_error, 0u);

  // The server is not wedged: a plain upload still lands.
  proto::SyncRecord plain = stream_record(proto::OpKind::full_file, 2);
  plain.path = "/sync/plain";
  plain.new_version = {1, 1};
  plain.payload = Bytes(64, 'p');
  send(plain);
  server_.pump();
  EXPECT_EQ(server_.records_applied(), 1u);
  EXPECT_TRUE(server_.fetch("/sync/plain").is_ok());
}

TEST_F(StreamFrameTest, InterleavedStreamIdsCommitIndependently) {
  open_stream(10, "/sync/ten", 2048);
  open_stream(20, "/sync/twenty", 1024);
  send_chunk(10, 0, 0, Bytes(1024, 'x'));
  send_chunk(20, 0, 0, Bytes(1024, 'y'));  // interleaved with stream 10
  send_chunk(10, 1024, 1, Bytes(1024, 'x'));
  commit_stream(20, "/sync/twenty", 1024);
  commit_stream(10, "/sync/ten", 2048);
  server_.pump();

  EXPECT_EQ(server_.streams_active(), 0u);
  EXPECT_EQ(server_.records_applied(), 2u);
  EXPECT_EQ(server_.fetch("/sync/ten")->size(), 2048u);
  EXPECT_EQ(server_.fetch("/sync/twenty")->size(), 1024u);
  const Drained d = drain_downstream();
  EXPECT_EQ(d.acks_ok, 2u);
  EXPECT_EQ(d.acks_error, 0u);
}

TEST_F(StreamFrameTest, DuplicateChunkOrdinalKillsTheStream) {
  open_stream(5, "/sync/dup", 2048);
  send_chunk(5, 0, 0, Bytes(1024, 'a'));
  send_chunk(5, 0, 0, Bytes(1024, 'a'));  // replayed seq 0: violation
  commit_stream(5, "/sync/dup", 2048);    // stage is gone: violation too
  server_.pump();

  EXPECT_EQ(server_.streams_active(), 0u);
  EXPECT_EQ(server_.records_applied(), 0u);
  EXPECT_FALSE(server_.fetch("/sync/dup").is_ok());
  EXPECT_EQ(drain_downstream().acks_error, 2u);
}

TEST_F(StreamFrameTest, ReorderedChunkOffsetKillsTheStream) {
  open_stream(6, "/sync/ooo", 3072);
  send_chunk(6, 0, 0, Bytes(1024, 'a'));
  send_chunk(6, 2048, 1, Bytes(1024, 'c'));  // skipped ahead: violation
  server_.pump();

  EXPECT_EQ(server_.streams_active(), 0u);
  EXPECT_EQ(drain_downstream().acks_error, 1u);
}

TEST_F(StreamFrameTest, ChunkOverrunningTheOpenedSizeIsRejected) {
  open_stream(7, "/sync/overrun", 1024);
  send_chunk(7, 0, 0, Bytes(2048, 'z'));  // more than the opened total
  server_.pump();
  EXPECT_EQ(server_.streams_active(), 0u);
  EXPECT_EQ(drain_downstream().acks_error, 1u);
}

TEST_F(StreamFrameTest, OrphanChunkAndCommitAreRejected) {
  send_chunk(99, 0, 0, Bytes(256, 'q'));
  commit_stream(99, "/sync/ghost", 256);
  server_.pump();

  EXPECT_EQ(server_.records_applied(), 0u);
  EXPECT_EQ(server_.streams_active(), 0u);
  EXPECT_EQ(drain_downstream().acks_error, 2u);
}

TEST_F(StreamFrameTest, DuplicateOpenDropsTheStage) {
  open_stream(8, "/sync/twice", 1024);
  open_stream(8, "/sync/twice", 1024);  // duplicate id: unrecoverable
  send_chunk(8, 0, 0, Bytes(1024, 'd'));
  server_.pump();

  EXPECT_EQ(server_.streams_active(), 0u);
  EXPECT_EQ(server_.records_applied(), 0u);
  // One error for the duplicate open, one for the now-orphaned chunk.
  EXPECT_EQ(drain_downstream().acks_error, 2u);
}

TEST_F(StreamFrameTest, CommitWithWrongTotalOrPathIsRejected) {
  open_stream(11, "/sync/short", 2048);
  send_chunk(11, 0, 0, Bytes(1024, 's'));
  commit_stream(11, "/sync/short", 2048);  // only half arrived
  open_stream(12, "/sync/renamed", 1024);
  send_chunk(12, 0, 0, Bytes(1024, 'r'));
  commit_stream(12, "/sync/other", 1024);  // path mismatch
  server_.pump();

  EXPECT_EQ(server_.records_applied(), 0u);
  EXPECT_EQ(server_.streams_active(), 0u);
  EXPECT_EQ(drain_downstream().acks_error, 2u);
}

TEST_F(StreamFrameTest, MutatedStreamFramesNeverWedgeTheServer) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(9000 + seed);
    // A valid open/chunk/commit exchange as raw frames.
    proto::SyncRecord open = stream_record(proto::OpKind::stream_open, seed);
    open.path = "/sync/mut";
    open.new_version = {1, 1};
    open.offset = 4096;
    open.size = 1024;
    proto::SyncRecord chunk =
        stream_record(proto::OpKind::stream_chunk, seed);
    chunk.payload = Bytes(1024, 'm');
    proto::SyncRecord commit =
        stream_record(proto::OpKind::stream_commit, seed);
    commit.path = "/sync/mut";
    commit.new_version = {1, 1};
    commit.size = 1024;
    const Bytes frames[] = {proto::encode(open), proto::encode(chunk),
                            proto::encode(commit)};
    for (int round = 0; round < 100; ++round) {
      for (const Bytes& valid : frames) {
        Bytes mutated = valid;
        const int flips = 1 + static_cast<int>(rng.next_below(4));
        for (int i = 0; i < flips; ++i) {
          mutated[rng.next_below(mutated.size())] ^=
              static_cast<std::uint8_t>(1 + rng.next_below(255));
        }
        if (rng.next_below(3) == 0) {
          mutated.resize(rng.next_below(mutated.size() + 1));
        }
        transport_.client_send(std::move(mutated));
      }
      server_.pump();
      (void)drain_downstream();
    }
  }
  // Whatever garbage got staged, a clean stream still goes through.
  open_stream(777, "/sync/after", 512);
  send_chunk(777, 0, 0, Bytes(512, 'k'));
  commit_stream(777, "/sync/after", 512);
  server_.pump();
  EXPECT_TRUE(server_.fetch("/sync/after").is_ok());
}

}  // namespace
}  // namespace dcfs
