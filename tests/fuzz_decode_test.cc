// Decoder robustness: every wire-facing decoder must reject arbitrary and
// mutated byte strings gracefully — an error Status, never a crash, hang,
// or out-of-bounds read.  (Run under ASan/valgrind for full effect; the
// assertions here catch accepted-garbage bugs.)
#include <gtest/gtest.h>

#include "common/rng.h"
#include "compress/lz.h"
#include "proto/messages.h"
#include "rsyncx/delta.h"
#include "server/cloud_server.h"
#include "wire/wire.h"

namespace dcfs {
namespace {

class FuzzSeedTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSeedTest, RandomBytesNeverCrashDecoders) {
  Rng rng(GetParam());
  wire::Codec codec;
  for (int round = 0; round < 200; ++round) {
    const Bytes junk = rng.bytes(rng.next_below(512));
    (void)proto::decode_record(junk);
    (void)proto::decode_ack(junk);
    (void)proto::decode_segments(junk);
    (void)rsyncx::decode_delta(junk);
    (void)lz::decompress(junk);
    (void)codec.decode(Bytes(junk));
  }
}

TEST_P(FuzzSeedTest, LzRoundTripProperty) {
  Rng rng(GetParam() + 4000);
  for (int round = 0; round < 40; ++round) {
    const std::size_t size = rng.next_below(64 * 1024);
    const Bytes input =
        rng.next_below(2) == 0 ? rng.text(size) : rng.bytes(size);

    // compress / compress_into / compressed_size agree byte-for-byte.
    const Bytes compressed = lz::compress(input);
    Bytes into;
    lz::compress_into(input, into);
    ASSERT_EQ(into, compressed);
    ASSERT_EQ(lz::compressed_size(input), compressed.size());
    ASSERT_LE(compressed.size(), lz::max_compressed_size(input.size()));

    Result<Bytes> out = lz::decompress(compressed);
    ASSERT_TRUE(out.is_ok());
    ASSERT_EQ(*out, input);
  }
}

TEST_P(FuzzSeedTest, MutatedLzStreamsNeverCrash) {
  Rng rng(GetParam() + 5000);
  const Bytes input = rng.text(8192);
  const Bytes valid = lz::compress(input);

  for (int round = 0; round < 300; ++round) {
    Bytes mutated = valid;
    const int flips = 1 + static_cast<int>(rng.next_below(4));
    for (int i = 0; i < flips; ++i) {
      mutated[rng.next_below(mutated.size())] ^=
          static_cast<std::uint8_t>(1 + rng.next_below(255));
    }
    if (rng.next_below(3) == 0) {
      mutated.resize(rng.next_below(mutated.size() + 1));
    }
    // Either a clean corruption error or a decode bounded by the cap —
    // never a crash, never unbounded output.
    Bytes out;
    const Status status = lz::decompress_into(mutated, out, 1 << 20);
    if (!status.is_ok()) EXPECT_EQ(status.code(), Errc::corruption);
  }
}

TEST(LzCorruptionTest, HandCraftedStreamsAreRejected) {
  // Truncated header: a token byte promising literals that never arrive.
  EXPECT_EQ(lz::decompress(Bytes{0xF0}).code(), Errc::corruption);
  // Literal run length extension cut off mid-varint.
  EXPECT_EQ(lz::decompress(Bytes{0xF0, 0xFF}).code(), Errc::corruption);
  // Match with a zero offset (points before the output start).
  EXPECT_EQ(lz::decompress(Bytes{0x04, 0x00, 0x00}).code(),
            Errc::corruption);
  // Match offset past everything decoded so far.
  EXPECT_EQ(lz::decompress(Bytes{0x14, 'x', 0xFF, 0xFF}).code(),
            Errc::corruption);
  // Match length truncated before its extension bytes.
  EXPECT_EQ(lz::decompress(Bytes{0x1F, 'x', 0x01, 0x00}).code(),
            Errc::corruption);
}

TEST(LzCorruptionTest, OversizedLengthClaimIsRejectedBeforeAllocating) {
  // A valid stream for 1 MiB of 'a'; a receiver capping output at 4 KiB
  // must reject it with a corruption error instead of inflating it.
  const Bytes big(1 << 20, 'a');
  const Bytes compressed = lz::compress(big);
  Bytes out;
  const Status capped = lz::decompress_into(compressed, out, 4096);
  ASSERT_FALSE(capped.is_ok());
  EXPECT_EQ(capped.code(), Errc::corruption);
  EXPECT_LE(out.capacity(), 1u << 16);  // the claim never drove allocation

  // A literal-run claim far past the actual input dies cleanly too.
  Bytes absurd{0xF0};
  for (int i = 0; i < 64; ++i) absurd.push_back(0xFF);
  absurd.push_back(0x00);
  EXPECT_EQ(lz::decompress(absurd).code(), Errc::corruption);
}

TEST_P(FuzzSeedTest, MutatedValidRecordsNeverCrash) {
  Rng rng(GetParam() + 1000);

  proto::SyncRecord record;
  record.kind = proto::OpKind::write;
  record.path = "/sync/some/file";
  record.path2 = "/sync/other";
  record.payload = proto::encode_segments({{64, rng.bytes(200)}});
  record.base_version = {1, 41};
  record.new_version = {1, 42};
  const Bytes valid = proto::encode(record);

  for (int round = 0; round < 500; ++round) {
    Bytes mutated = valid;
    // Flip 1-4 random bytes and/or truncate.
    const int flips = 1 + static_cast<int>(rng.next_below(4));
    for (int i = 0; i < flips; ++i) {
      mutated[rng.next_below(mutated.size())] ^=
          static_cast<std::uint8_t>(1 + rng.next_below(255));
    }
    if (rng.next_below(3) == 0) {
      mutated.resize(rng.next_below(mutated.size() + 1));
    }
    Result<proto::SyncRecord> decoded = proto::decode_record(mutated);
    if (decoded.is_ok()) {
      // Accepted mutations must still produce internally consistent
      // records (payload length fields were validated).
      (void)proto::decode_segments(decoded->payload);
    }
  }
}

TEST_P(FuzzSeedTest, MutatedDeltasNeverCorruptApply) {
  Rng rng(GetParam() + 2000);
  const Bytes base = rng.bytes(20'000);
  Bytes target = base;
  target[100] ^= 1;
  const Bytes valid = rsyncx::encode_delta(
      rsyncx::compute_delta_local(base, target, 4096, nullptr));

  for (int round = 0; round < 300; ++round) {
    Bytes mutated = valid;
    mutated[rng.next_below(mutated.size())] ^=
        static_cast<std::uint8_t>(1 + rng.next_below(255));
    Result<rsyncx::Delta> decoded = rsyncx::decode_delta(mutated);
    if (!decoded) continue;
    // A decodable mutation may still describe an invalid patch; apply must
    // fail cleanly or produce a size-consistent result.
    Result<Bytes> applied = rsyncx::apply_delta(base, *decoded);
    if (applied.is_ok()) {
      EXPECT_EQ(applied->size(), decoded->target_size);
    }
  }
}

TEST_P(FuzzSeedTest, ServerSurvivesGarbageFrames) {
  Rng rng(GetParam() + 3000);
  CloudServer server(CostProfile::pc());
  Transport transport(NetProfile::pc_wan());
  server.attach(1, transport);

  for (int round = 0; round < 100; ++round) {
    transport.client_send(rng.bytes(1 + rng.next_below(300)));
  }
  server.pump();
  // Every frame produced an ack (mostly corruption errors), none crashed.
  std::size_t acks = 0;
  while (transport.client_poll()) ++acks;
  EXPECT_EQ(acks, 100u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeedTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace dcfs
