// dcfs::wire — codec behavior, BufferPool correctness under concurrency,
// and the tentpole guarantee: with wire compression on, decoded frames,
// server state, version histories and ack effects are byte-identical to
// the uncompressed pipeline at every thread count.
#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "compress/lz.h"
#include "core/client.h"
#include "net/transport.h"
#include "obs/obs.h"
#include "par/worker_pool.h"
#include "server/cloud_server.h"
#include "vfs/intercept.h"
#include "vfs/memfs.h"
#include "wire/buffer_pool.h"
#include "wire/wire.h"

namespace dcfs {
namespace {

// ---------------------------------------------------------------------------
// Entropy probe
// ---------------------------------------------------------------------------

TEST(SampledEntropy, SeparatesTextFromRandom) {
  Rng rng(7);
  const Bytes random = rng.bytes(64 * 1024);
  const Bytes text = rng.text(64 * 1024);

  const double random_bits = wire::sampled_entropy_bits(random, 1024);
  const double text_bits = wire::sampled_entropy_bits(text, 1024);

  // Random bytes sit near 8 bits/byte even on a 1 KiB sample; generated
  // log-lines come in far below the default 7.0 threshold.
  EXPECT_GT(random_bits, 7.0);
  EXPECT_LT(text_bits, 7.0);
  EXPECT_LT(text_bits, random_bits);
}

TEST(SampledEntropy, DegenerateInputs) {
  EXPECT_EQ(wire::sampled_entropy_bits(ByteSpan{}, 1024), 0.0);
  const Bytes uniform(4096, 0x42);
  EXPECT_EQ(wire::sampled_entropy_bits(uniform, 1024), 0.0);
  // sample_bytes == 0 histograms everything.
  Rng rng(9);
  const Bytes random = rng.bytes(4096);
  EXPECT_GT(wire::sampled_entropy_bits(random, 0), 7.0);
}

// ---------------------------------------------------------------------------
// Codec: single-frame encode/decode
// ---------------------------------------------------------------------------

TEST(WireCodec, CompressibleFrameRoundTrips) {
  wire::Codec codec;
  Rng rng(1);
  const Bytes body = rng.text(32 * 1024);

  wire::EncodedFrame frame = codec.encode(Bytes(body));
  EXPECT_TRUE(frame.attempted);
  EXPECT_TRUE(frame.compressed);
  EXPECT_EQ(frame.raw_size, body.size());
  ASSERT_FALSE(frame.wire.empty());
  EXPECT_EQ(frame.wire.front(), wire::kTagLz);
  EXPECT_LT(frame.wire.size(), body.size());

  wire::DecodeInfo info;
  Result<Bytes> decoded = codec.decode(std::move(frame.wire), &info);
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(*decoded, body);
  EXPECT_TRUE(info.was_compressed);
  EXPECT_EQ(info.raw_size, body.size());
}

TEST(WireCodec, IncompressibleFrameShipsRaw) {
  wire::Codec codec;
  Rng rng(2);
  const Bytes body = rng.bytes(32 * 1024);

  wire::EncodedFrame frame = codec.encode(Bytes(body));
  // The entropy probe fires before the compressor runs.
  EXPECT_FALSE(frame.attempted);
  EXPECT_FALSE(frame.compressed);
  ASSERT_EQ(frame.wire.size(), body.size() + 1);
  EXPECT_EQ(frame.wire.front(), wire::kTagRaw);

  wire::DecodeInfo info;
  Result<Bytes> decoded = codec.decode(std::move(frame.wire), &info);
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(*decoded, body);
  EXPECT_FALSE(info.was_compressed);
}

TEST(WireCodec, TinyFrameSkipsBelowFloor) {
  wire::Codec codec;  // default min_bytes = 128
  const Bytes body = to_bytes("ack ack ack ack ack ack");
  ASSERT_LT(body.size(), codec.config().min_bytes);

  wire::EncodedFrame frame = codec.encode(Bytes(body));
  EXPECT_FALSE(frame.attempted);
  ASSERT_EQ(frame.wire.size(), body.size() + 1);
  EXPECT_EQ(frame.wire.front(), wire::kTagRaw);

  Result<Bytes> decoded = codec.decode(std::move(frame.wire));
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(*decoded, body);
}

TEST(WireCodec, EmptyBodyRoundTrips) {
  wire::Codec codec;
  wire::EncodedFrame frame = codec.encode(Bytes{});
  ASSERT_EQ(frame.wire.size(), 1u);
  Result<Bytes> decoded = codec.decode(std::move(frame.wire));
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_TRUE(decoded->empty());
}

TEST(WireCodec, DecodeRejectsMalformedFrames) {
  wire::Codec codec;

  Result<Bytes> empty = codec.decode(Bytes{});
  ASSERT_FALSE(empty.is_ok());
  EXPECT_EQ(empty.code(), Errc::corruption);

  Bytes unknown{0x7F, 1, 2, 3};
  Result<Bytes> bad_tag = codec.decode(std::move(unknown));
  ASSERT_FALSE(bad_tag.is_ok());
  EXPECT_EQ(bad_tag.code(), Errc::corruption);

  // A token promising 15 literal bytes that are not there.
  Result<Bytes> short_literals = codec.decode(Bytes{wire::kTagLz, 0xF0});
  ASSERT_FALSE(short_literals.is_ok());
  EXPECT_EQ(short_literals.code(), Errc::corruption);

  // A match whose offset (0) points before the start of the output.
  Result<Bytes> bad_offset =
      codec.decode(Bytes{wire::kTagLz, 0x04, 0x00, 0x00});
  ASSERT_FALSE(bad_offset.is_ok());
  EXPECT_EQ(bad_offset.code(), Errc::corruption);

  // Truncating a real stream may land on a legal sequence boundary (the
  // final sequence has no match), so decode is allowed to succeed — but it
  // must never crash, and a "success" must not reproduce the original.
  Rng rng(3);
  const Bytes body = rng.text(16 * 1024);
  wire::EncodedFrame frame = codec.encode(Bytes(body));
  ASSERT_TRUE(frame.compressed);
  for (std::size_t keep : {2u, 17u, 1000u}) {
    Bytes truncated(frame.wire.begin(),
                    frame.wire.begin() + static_cast<std::ptrdiff_t>(keep));
    Result<Bytes> cut = codec.decode(std::move(truncated));
    if (cut.is_ok()) EXPECT_NE(*cut, body) << "kept " << keep;
  }
}

TEST(WireCodec, MetricsAccountForSkipAndCompression) {
  obs::Obs obs;
  wire::Codec codec({}, &obs);
  Rng rng(4);

  const Bytes text = rng.text(8 * 1024);
  const Bytes random = rng.bytes(8 * 1024);
  wire::EncodedFrame a = codec.encode(Bytes(text));
  wire::EncodedFrame b = codec.encode(Bytes(random));
  ASSERT_TRUE(a.compressed);
  ASSERT_FALSE(b.compressed);

  obs::Snapshot snap = obs.registry.snapshot();
  EXPECT_EQ(snap.counter("net.wire.raw_bytes"), text.size() + random.size());
  EXPECT_EQ(snap.counter("net.wire.wire_bytes"),
            a.wire.size() + b.wire.size());
  EXPECT_EQ(snap.counter("net.wire.skipped_frames"), 1u);
  EXPECT_LT(snap.counter("net.wire.wire_bytes"),
            snap.counter("net.wire.raw_bytes"));
}

// ---------------------------------------------------------------------------
// Codec: batch determinism across worker counts
// ---------------------------------------------------------------------------

std::vector<Bytes> batch_bodies() {
  Rng rng(11);
  std::vector<Bytes> bodies;
  for (int i = 0; i < 24; ++i) {
    switch (i % 4) {
      case 0: bodies.push_back(rng.text(4096 + 513 * i)); break;
      case 1: bodies.push_back(rng.bytes(4096 + 257 * i)); break;
      case 2: bodies.push_back(to_bytes("tiny control frame")); break;
      default: bodies.push_back(rng.text(64 * 1024)); break;
    }
  }
  return bodies;
}

TEST(WireCodec, BatchOutputIdenticalAtEveryWorkerCount) {
  wire::Codec codec;
  std::vector<wire::EncodedFrame> serial =
      codec.encode_batch(batch_bodies(), nullptr);

  for (std::uint32_t lanes : {1u, 2u, 4u}) {
    par::WorkerPool pool(lanes);
    std::vector<wire::EncodedFrame> parallel =
        codec.encode_batch(batch_bodies(), &pool);
    ASSERT_EQ(parallel.size(), serial.size()) << lanes << " lanes";
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(parallel[i].wire, serial[i].wire) << "frame " << i;
      EXPECT_EQ(parallel[i].compressed, serial[i].compressed) << "frame " << i;
      EXPECT_EQ(parallel[i].raw_size, serial[i].raw_size) << "frame " << i;
    }
    // Every frame decodes back to its original body regardless of lanes.
    std::vector<Bytes> bodies = batch_bodies();
    for (std::size_t i = 0; i < parallel.size(); ++i) {
      Result<Bytes> decoded = codec.decode(std::move(parallel[i].wire));
      ASSERT_TRUE(decoded.is_ok()) << "frame " << i;
      EXPECT_EQ(*decoded, bodies[i]) << "frame " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// BufferPool
// ---------------------------------------------------------------------------

TEST(BufferPoolTest, ReleaseThenAcquireHits) {
  wire::BufferPool pool;
  bool hit = true;
  Bytes b = pool.acquire(4096, &hit);
  EXPECT_FALSE(hit);
  EXPECT_GE(b.capacity(), 4096u);
  EXPECT_TRUE(b.empty());

  const std::uint8_t* data = b.data();
  pool.release(std::move(b));
  EXPECT_EQ(pool.idle_buffers(), 1u);

  Bytes again = pool.acquire(4096, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(again.data(), data);  // literally the same storage
  EXPECT_TRUE(again.empty());
  EXPECT_EQ(pool.idle_buffers(), 0u);

  wire::BufferPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
}

TEST(BufferPoolTest, SmallAndOversizeBuffersAreNeverPooled) {
  wire::BufferPool pool;
  Bytes tiny;
  tiny.reserve(16);  // below kMinClassBytes
  pool.release(std::move(tiny));
  EXPECT_EQ(pool.idle_buffers(), 0u);

  bool hit = true;
  Bytes huge = pool.acquire((64ull << 20), &hit);  // above the largest class
  EXPECT_FALSE(hit);
  pool.release(std::move(huge));
  // Filed under the largest class it fully covers — a 64 MiB buffer still
  // serves any smaller request, so the pool keeps it under the top class.
  EXPECT_EQ(pool.idle_buffers(), 1u);
  EXPECT_EQ(pool.stats().dropped, 1u);
}

TEST(BufferPoolTest, PerClassCapBoundsIdleMemory) {
  wire::BufferPool pool;
  std::vector<Bytes> held;
  for (std::size_t i = 0; i < wire::BufferPool::kMaxPerClass + 5; ++i) {
    held.push_back(pool.acquire(2048));
  }
  for (Bytes& b : held) pool.release(std::move(b));
  EXPECT_EQ(pool.idle_buffers(), wire::BufferPool::kMaxPerClass);
  EXPECT_EQ(pool.stats().dropped, 5u);
}

TEST(BufferPoolTest, LeaseReleasesUnlessTaken) {
  wire::BufferPool pool;
  {
    wire::Lease lease(&pool, pool.acquire(1024));
    (*lease).push_back(1);
  }
  EXPECT_EQ(pool.idle_buffers(), 1u);

  Bytes taken;
  {
    wire::Lease lease(&pool, pool.acquire(1024));
    taken = std::move(lease).take();
  }
  EXPECT_EQ(pool.idle_buffers(), 0u);  // the hit consumed the parked buffer
  EXPECT_GE(taken.capacity(), 1024u);
}

TEST(BufferPoolTest, ConcurrentAcquireReleaseIsSafe) {
  wire::BufferPool pool;
  constexpr int kThreads = 4;
  constexpr int kRounds = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool, t] {
      for (int i = 0; i < kRounds; ++i) {
        const std::size_t size = 1024u << ((i + t) % 4);
        Bytes b = pool.acquire(size);
        b.assign(64, static_cast<std::uint8_t>(i));
        pool.release(std::move(b));
      }
    });
  }
  for (std::thread& th : threads) th.join();

  wire::BufferPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<std::uint64_t>(kThreads) * kRounds);
  EXPECT_LE(pool.idle_buffers(),
            wire::BufferPool::kClasses * wire::BufferPool::kMaxPerClass);
}

// ---------------------------------------------------------------------------
// End-to-end equivalence: wire on/off x thread counts
// ---------------------------------------------------------------------------

struct E2eConfig {
  bool wire = false;
  std::uint32_t delta_threads = 1;
  std::size_t apply_shards = 1;
  bool bundle = false;
};

/// Everything observable about a finished run that must not depend on
/// wire compression or thread counts.
struct E2eDigest {
  std::string state;       ///< server files, versions, histories, counters
  std::string peer;        ///< client B's forwarded view of the namespace
  std::uint64_t uploaded = 0;
  std::uint64_t forwards = 0;
  std::uint64_t conflicts = 0;
  std::uint64_t errors = 0;
};

/// Two clients sharing one cloud run a fixed mixed workload (compressible
/// text, incompressible blobs, transactional rewrites, renames, unlinks)
/// and the run's observable outcome is digested for comparison.
E2eDigest run_e2e(const E2eConfig& cfg) {
  VirtualClock clock;
  MemFs local_a(clock);
  MemFs local_b(clock);
  Transport transport_a(NetProfile::pc_wan());
  Transport transport_b(NetProfile::pc_wan());

  ServerConfig server_config;
  server_config.apply_shards = cfg.apply_shards;
  server_config.wire_compression = cfg.wire;
  CloudServer server(CostProfile::pc(), server_config);

  auto client_config = [&cfg](std::uint32_t id) {
    ClientConfig config;
    config.client_id = id;
    config.delta_threads = cfg.delta_threads;
    config.wire_compression = cfg.wire;
    config.bundle_uploads = cfg.bundle;
    return config;
  };
  DeltaCfsClient client_a(local_a, transport_a, clock, CostProfile::pc(),
                          client_config(1));
  DeltaCfsClient client_b(local_b, transport_b, clock, CostProfile::pc(),
                          client_config(2));
  InterceptingFs fs_a(local_a, client_a);
  InterceptingFs fs_b(local_b, client_b);
  server.attach(1, transport_a);
  server.attach(2, transport_b);

  auto settle = [&](Duration duration = seconds(12)) {
    for (Duration t = 0; t < duration; t += milliseconds(200)) {
      clock.advance(milliseconds(200));
      client_a.tick(clock.now());
      client_b.tick(clock.now());
      server.pump();
      client_a.tick(clock.now());
      client_b.tick(clock.now());
    }
    client_a.flush(clock.now());
    client_b.flush(clock.now());
    server.pump();
    client_a.tick(clock.now());
    client_b.tick(clock.now());
  };

  fs_a.mkdir("/sync");
  fs_b.mkdir("/sync");
  settle();

  Rng rng(99);

  // Compressible text and incompressible binary, from both sides.
  fs_a.write_file("/sync/notes.txt", rng.text(48 * 1024));
  fs_a.write_file("/sync/blob.bin", rng.bytes(24 * 1024));
  fs_b.write_file("/sync/peer.log", rng.text(8 * 1024));
  settle();

  // Grow the log (delta-friendly append) and patch the blob in place.
  {
    Result<FileHandle> h = fs_a.open("/sync/notes.txt");
    if (h) {
      fs_a.write(*h, 48 * 1024, rng.text(16 * 1024));
      fs_a.close(*h);
    }
  }
  {
    Result<FileHandle> h = fs_a.open("/sync/blob.bin");
    if (h) {
      fs_a.write(*h, 1000, rng.bytes(512));
      fs_a.close(*h);
    }
  }
  settle();

  // Transactional save (Fig. 3 Word pattern) — exercises the local-delta
  // path, so the wire layer sees small compressed-ish delta records too.
  {
    Result<Bytes> doc = local_a.read_file("/sync/notes.txt");
    if (doc) {
      Bytes edited = std::move(*doc);
      const Bytes patch = rng.text(2048);
      edited.insert(edited.begin() + 1024, patch.begin(), patch.end());
      fs_a.rename("/sync/notes.txt", "/sync/notes.txt.bak");
      fs_a.write_file("/sync/notes.txt.tmp", edited);
      fs_a.rename("/sync/notes.txt.tmp", "/sync/notes.txt");
      fs_a.unlink("/sync/notes.txt.bak");
    }
  }
  settle();

  // Metadata churn: rename + unlink, plus a burst of small files (bundle
  // fodder when bundling is on; tiny raw-tag frames when it is not).
  fs_a.rename("/sync/blob.bin", "/sync/blob2.bin");
  for (int i = 0; i < 6; ++i) {
    fs_a.write_file("/sync/small" + std::to_string(i),
                    rng.text(200 + 37 * static_cast<std::uint64_t>(i)));
  }
  fs_b.unlink("/sync/peer.log");
  settle(seconds(16));

  E2eDigest digest;
  std::ostringstream state;
  for (const std::string& path : server.paths()) {
    Result<Bytes> content = server.fetch(path);
    state << path << " #" << (content ? fnv1a(*content) : 0) << " @";
    if (auto v = server.version(path)) {
      state << v->client_id << ":" << v->counter;
    }
    state << " [";
    for (const proto::VersionId& v : server.history(path)) {
      Result<Bytes> old = server.fetch_version(path, v);
      state << v.client_id << ":" << v.counter << "#"
            << (old ? fnv1a(*old) : 0) << " ";
    }
    state << "]\n";
  }
  for (const std::string& path : server.conflict_paths()) {
    state << "conflict " << path << "\n";
  }
  state << "applied=" << server.records_applied()
        << " conflicts=" << server.conflicts_seen()
        << " txn=" << server.txn_groups_applied()
        << " rejected=" << server.rejections().size();
  digest.state = state.str();

  std::ostringstream peer;
  for (const std::string& path : server.paths()) {
    Result<Bytes> at_b = local_b.read_file(path);
    peer << path << " #" << (at_b ? fnv1a(*at_b) : 0) << "\n";
  }
  digest.peer = peer.str();

  digest.uploaded = client_a.records_uploaded() + client_b.records_uploaded();
  digest.forwards = client_a.forwards_applied() + client_b.forwards_applied();
  digest.conflicts = client_a.conflicts_acked() + client_b.conflicts_acked();
  digest.errors = client_a.errors_acked() + client_b.errors_acked();
  return digest;
}

TEST(WireEndToEnd, CompressionPreservesEverythingAtEveryThreadCount) {
  const E2eDigest baseline = run_e2e({});
  ASSERT_EQ(baseline.errors, 0u);
  ASSERT_GT(baseline.forwards, 0u);
  ASSERT_FALSE(baseline.state.empty());

  for (std::uint32_t threads : {1u, 2u, 4u}) {
    E2eConfig cfg;
    cfg.wire = true;
    cfg.delta_threads = threads;
    const E2eDigest with_wire = run_e2e(cfg);
    EXPECT_EQ(with_wire.state, baseline.state) << threads << " threads";
    EXPECT_EQ(with_wire.peer, baseline.peer) << threads << " threads";
    EXPECT_EQ(with_wire.uploaded, baseline.uploaded) << threads << " threads";
    EXPECT_EQ(with_wire.forwards, baseline.forwards) << threads << " threads";
    EXPECT_EQ(with_wire.conflicts, baseline.conflicts)
        << threads << " threads";
    EXPECT_EQ(with_wire.errors, 0u) << threads << " threads";
  }
}

TEST(WireEndToEnd, CompressionComposesWithShardedApplyAndBundling) {
  {
    E2eConfig sharded;
    sharded.apply_shards = 2;
    const E2eDigest baseline = run_e2e(sharded);
    sharded.wire = true;
    sharded.delta_threads = 2;
    const E2eDigest with_wire = run_e2e(sharded);
    EXPECT_EQ(with_wire.state, baseline.state);
    EXPECT_EQ(with_wire.peer, baseline.peer);
    EXPECT_EQ(with_wire.errors, 0u);
  }
  {
    E2eConfig bundled;
    bundled.bundle = true;
    const E2eDigest baseline = run_e2e(bundled);
    bundled.wire = true;
    const E2eDigest with_wire = run_e2e(bundled);
    EXPECT_EQ(with_wire.state, baseline.state);
    EXPECT_EQ(with_wire.peer, baseline.peer);
    EXPECT_EQ(with_wire.errors, 0u);
  }
}

TEST(WireEndToEnd, CompressibleTrafficShrinksOnTheWire) {
  // Same workload, wire off vs on: the transport meter (which prices wire
  // time) must see fewer upstream bytes once text frames compress.  Run the
  // upload side directly so the comparison is within one transport.
  auto run_traffic = [](bool wire_on) {
    VirtualClock clock;
    MemFs local(clock);
    Transport transport(NetProfile::pc_wan());
    ServerConfig server_config;
    server_config.wire_compression = wire_on;
    CloudServer server(CostProfile::pc(), server_config);
    ClientConfig config;
    config.wire_compression = wire_on;
    DeltaCfsClient client(local, transport, clock, CostProfile::pc(), config);
    InterceptingFs fs(local, client);
    server.attach(1, transport);

    fs.mkdir("/sync");
    Rng rng(5);
    fs.write_file("/sync/log.txt", rng.text(256 * 1024));
    for (Duration t = 0; t < seconds(10); t += milliseconds(200)) {
      clock.advance(milliseconds(200));
      client.tick(clock.now());
      server.pump();
      client.tick(clock.now());
    }
    client.flush(clock.now());
    server.pump();
    client.tick(clock.now());

    EXPECT_EQ(client.errors_acked(), 0u);
    Result<Bytes> stored = server.fetch("/sync/log.txt");
    EXPECT_TRUE(stored.is_ok());
    return transport.meter().up_bytes();
  };

  const std::uint64_t plain = run_traffic(false);
  const std::uint64_t compressed = run_traffic(true);
  EXPECT_LT(compressed, plain);
  // Text compresses well; expect a material reduction, not a rounding win.
  EXPECT_LT(compressed, plain - plain / 5);
}

}  // namespace
}  // namespace dcfs
