// Unit tests for dcfs::obs — metrics registry, tracer, logger and the
// small JSON parser backing trace validation.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/clock.h"
#include "obs/json.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dcfs::obs {
namespace {

// ---------------------------------------------------------------- metrics

TEST(RegistryTest, RegistrationIsIdempotent) {
  Registry registry;
  Counter& a = registry.counter("x");
  Counter& b = registry.counter("x");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(&registry.gauge("g"), &registry.gauge("g"));
  Histogram& h1 = registry.histogram("h", {10, 20});
  Histogram& h2 = registry.histogram("h", {999});  // bounds of first win
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.bounds().size(), 2u);
}

TEST(RegistryTest, CounterGaugeBasics) {
  Registry registry;
  Counter& counter = registry.counter("ops");
  counter.inc();
  counter.inc(41);
  EXPECT_EQ(counter.value(), 42u);

  Gauge& gauge = registry.gauge("depth");
  gauge.set(7);
  gauge.add(-3);
  EXPECT_EQ(gauge.value(), 4);
}

TEST(RegistryTest, HistogramBucketPlacement) {
  Registry registry;
  Histogram& h = registry.histogram("lat", {10, 100, 1000});
  h.observe(5);     // <= 10  -> bucket 0
  h.observe(10);    // inclusive upper bound -> bucket 0
  h.observe(11);    // bucket 1
  h.observe(5000);  // overflow bucket
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 5u + 10 + 11 + 5000);
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 0u);
  EXPECT_EQ(h.bucket_count(3), 1u);  // overflow

  const Snapshot snap = registry.snapshot();
  const HistogramSnapshot* hs = snap.histogram("lat");
  ASSERT_NE(hs, nullptr);
  EXPECT_EQ(hs->min, 5u);
  EXPECT_EQ(hs->max, 5000u);
  EXPECT_DOUBLE_EQ(hs->mean(), (5.0 + 10 + 11 + 5000) / 4.0);
  EXPECT_EQ(hs->percentile(50), 10u);   // 2 of 4 in bucket 0
  EXPECT_EQ(hs->percentile(75), 100u);  // 3 of 4 by bucket 1
}

TEST(RegistryTest, SnapshotIsIsolatedFromLaterIncrements) {
  Registry registry;
  Counter& counter = registry.counter("c");
  registry.gauge("g").set(1);
  registry.histogram("h").observe(50);
  counter.inc(10);

  const Snapshot snap = registry.snapshot();
  counter.inc(90);
  registry.gauge("g").set(999);
  registry.histogram("h").observe(50);

  EXPECT_EQ(snap.counter("c"), 10u);
  EXPECT_EQ(snap.gauge("g"), 1);
  EXPECT_EQ(snap.histogram("h")->count, 1u);
  EXPECT_TRUE(snap.has_counter("c"));
  EXPECT_FALSE(snap.has_counter("absent"));
  EXPECT_EQ(snap.counter("absent"), 0u);
  EXPECT_EQ(snap.histogram("absent"), nullptr);
}

TEST(RegistryTest, ConcurrentIncrementsAreLossless) {
  Registry registry;
  Counter& counter = registry.counter("hot");
  Histogram& histogram = registry.histogram("lat");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 100'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter, &histogram] {
      for (int i = 0; i < kPerThread; ++i) {
        counter.inc();
        histogram.observe(100);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(histogram.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(RegistryTest, NullSafeHelpersNoOp) {
  inc(nullptr);
  observe(nullptr, 5);
  set(nullptr, 5);  // must not crash

  Registry registry;
  Counter& counter = registry.counter("c");
  inc(&counter, 3);
  EXPECT_EQ(counter.value(), 3u);
}

TEST(RegistryTest, SnapshotToStringMentionsEveryMetric) {
  Registry registry;
  registry.counter("the.counter").inc();
  registry.gauge("the.gauge").set(-5);
  registry.histogram("the.histogram").observe(42);
  const std::string text = registry.snapshot().to_string();
  EXPECT_NE(text.find("the.counter"), std::string::npos);
  EXPECT_NE(text.find("the.gauge"), std::string::npos);
  EXPECT_NE(text.find("the.histogram"), std::string::npos);
}

TEST(ExportTest, CostAndTrafficExports) {
  Registry registry;
  CostMeter meter(CostProfile::pc());
  // 2x the pc profile's units_per_tick, so the ticks gauge lands on 2.
  meter.charge(CostKind::rolling_hash, 6'000'000);
  export_cost(meter, registry, "client.cpu");

  TrafficMeter traffic;
  traffic.add_up(100, proto::MessageType::sync_record);
  traffic.add_down(40, proto::MessageType::ack);
  export_traffic(traffic, registry, "net");

  const Snapshot snap = registry.snapshot();
  EXPECT_EQ(snap.gauge("client.cpu.units"), 6'000'000);
  EXPECT_EQ(snap.gauge("client.cpu.ticks"), 2);
  EXPECT_EQ(snap.gauge("client.cpu.units.rolling_hash"), 6'000'000);
  EXPECT_EQ(snap.gauge("net.up.bytes"), 100);
  EXPECT_EQ(snap.gauge("net.up.bytes.sync_record"), 100);
  EXPECT_EQ(snap.gauge("net.down.bytes.ack"), 40);
  EXPECT_EQ(snap.gauge("net.down.msgs.ack"), 1);
}

// ----------------------------------------------------------------- tracer

TEST(TracerTest, DisabledTracerRecordsNothing) {
  Tracer tracer;
  { Span span(&tracer, "a"); }
  { Span span(nullptr, "b"); }
  EXPECT_TRUE(tracer.events().empty());
}

TEST(TracerTest, SpansNestAndTimestampFromClock) {
  VirtualClock clock;
  Tracer tracer;
  tracer.enable(clock);
  {
    Span outer(&tracer, "outer");
    clock.advance(100);
    {
      Span inner(&tracer, "inner", "cat");
      clock.advance(50);
    }
    clock.advance(25);
  }
  tracer.disable();

  const std::vector<TraceEvent>& events = tracer.events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].name, "outer");
  EXPECT_EQ(events[0].phase, 'B');
  EXPECT_EQ(events[0].ts, 0);
  EXPECT_EQ(events[1].name, "inner");
  EXPECT_EQ(events[1].ts, 100);
  EXPECT_EQ(events[2].phase, 'E');
  EXPECT_EQ(events[2].ts, 150);
  EXPECT_EQ(events[3].name, "outer");
  EXPECT_EQ(events[3].ts, 175);
  EXPECT_TRUE(well_nested(events));
  EXPECT_EQ(tracer.open_spans(), 0u);
}

TEST(TracerTest, DeterministicUnderManualClock) {
  const auto record = [] {
    VirtualClock clock;
    Tracer tracer;
    tracer.enable(clock);
    tracer.set_process(7, "run");
    for (int i = 0; i < 10; ++i) {
      Span span(&tracer, "op");
      clock.advance(13);
      tracer.instant("mark");
    }
    tracer.disable();
    return tracer.to_chrome_json();
  };
  EXPECT_EQ(record(), record());  // byte-identical across runs
}

TEST(TracerTest, EndAfterDisableStillUnwinds) {
  VirtualClock clock;
  Tracer tracer;
  tracer.enable(clock);
  tracer.begin("a");
  tracer.disable();
  tracer.end();  // must not crash; uses the begin timestamp
  EXPECT_EQ(tracer.open_spans(), 0u);
  EXPECT_TRUE(well_nested(tracer.events()));
}

TEST(TracerTest, CapacityDropsButStaysBalanced) {
  VirtualClock clock;
  Tracer tracer;
  tracer.set_capacity(6);
  tracer.enable(clock);
  for (int i = 0; i < 10; ++i) {
    Span span(&tracer, "s");
    clock.advance(1);
  }
  tracer.disable();
  EXPECT_GT(tracer.dropped(), 0u);
  EXPECT_EQ(tracer.open_spans(), 0u);
  EXPECT_LE(tracer.events().size(), 6u);
  EXPECT_TRUE(well_nested(tracer.events()));
}

TEST(TracerTest, WellNestedRejectsMismatchedTracks) {
  std::vector<TraceEvent> bad;
  bad.push_back({"a", "", 'B', 0, 1, 1});
  bad.push_back({"b", "", 'E', 1, 1, 1});  // closes "a" under the wrong name
  EXPECT_FALSE(well_nested(bad));

  std::vector<TraceEvent> unclosed;
  unclosed.push_back({"a", "", 'B', 0, 1, 1});
  EXPECT_FALSE(well_nested(unclosed));

  // Same names on different (pid, tid) tracks don't interfere.
  std::vector<TraceEvent> tracks;
  tracks.push_back({"a", "", 'B', 0, 1, 1});
  tracks.push_back({"a", "", 'B', 0, 2, 1});
  tracks.push_back({"a", "", 'E', 1, 2, 1});
  tracks.push_back({"a", "", 'E', 1, 1, 1});
  EXPECT_TRUE(well_nested(tracks));
}

TEST(TracerTest, GoldenChromeJsonValidates) {
  VirtualClock clock;
  Tracer tracer;
  tracer.enable(clock);
  tracer.set_process(1, "proc \"one\"");  // name needing escapes
  {
    Span outer(&tracer, "outer");
    clock.advance(10);
    Span inner(&tracer, "in\\ner");
    clock.advance(10);
  }
  tracer.disable();

  const std::string json = tracer.to_chrome_json();
  std::string error;
  std::size_t count = 0;
  EXPECT_TRUE(validate_chrome_trace(json, &error, &count)) << error;
  EXPECT_EQ(count, 4u);

  EXPECT_FALSE(validate_chrome_trace("not json"));
  EXPECT_FALSE(validate_chrome_trace("{\"other\": 1}"));
  // An E with no matching B must be rejected.
  EXPECT_FALSE(validate_chrome_trace(
      R"({"traceEvents":[{"name":"x","ph":"E","ts":0,"pid":1,"tid":1}]})"));
}

TEST(TracerTest, SummaryAggregatesPerName) {
  VirtualClock clock;
  Tracer tracer;
  tracer.enable(clock);
  for (int i = 0; i < 3; ++i) {
    Span span(&tracer, "work");
    clock.advance(100);
  }
  tracer.disable();
  const std::string summary = tracer.summary();
  EXPECT_NE(summary.find("work"), std::string::npos);
  EXPECT_NE(summary.find("3"), std::string::npos);    // count
  EXPECT_NE(summary.find("300"), std::string::npos);  // total µs
}

// ----------------------------------------------------------------- logger

TEST(LoggerTest, LevelFromEnvPrecedence) {
  EXPECT_EQ(level_from_env(nullptr, nullptr), LogLevel::warn);
  EXPECT_EQ(level_from_env("debug", nullptr), LogLevel::debug);
  EXPECT_EQ(level_from_env("TRACE", nullptr), LogLevel::trace);
  EXPECT_EQ(level_from_env("warning", nullptr), LogLevel::warn);
  EXPECT_EQ(level_from_env("off", "1"), LogLevel::off);
  // DCFS_LOG wins over the legacy flag.
  EXPECT_EQ(level_from_env("error", "1"), LogLevel::error);
  // DCFS_DEBUG=1 is a legacy alias for debug; "0" means unset.
  EXPECT_EQ(level_from_env(nullptr, "1"), LogLevel::debug);
  EXPECT_EQ(level_from_env(nullptr, "0"), LogLevel::warn);
  EXPECT_EQ(level_from_env("", "1"), LogLevel::debug);
  EXPECT_EQ(level_from_env("bogus", nullptr), LogLevel::warn);
}

TEST(LoggerTest, FormatsComponentMessageAndFields) {
  Logger logger(LogLevel::debug);
  std::string captured;
  logger.set_sink([&captured](std::string_view line) {
    captured.assign(line.data(), line.size());
  });
  logger.log(LogLevel::debug, "client", "delta replace",
             {{"path", "/sync/a b"}, {"bytes", 123}, {"ok", true}});
  EXPECT_EQ(captured,
            "[debug] client: delta replace path=\"/sync/a b\" bytes=123 "
            "ok=true");
}

TEST(LoggerTest, ThresholdGatesEmission) {
  Logger logger(LogLevel::warn);
  int calls = 0;
  logger.set_sink([&calls](std::string_view) { ++calls; });
  EXPECT_FALSE(logger.enabled(LogLevel::debug));
  logger.log(LogLevel::debug, "c", "suppressed");
  EXPECT_EQ(calls, 0);
  logger.log(LogLevel::error, "c", "emitted");
  EXPECT_EQ(calls, 1);
  logger.set_level(LogLevel::off);
  logger.log(LogLevel::error, "c", "also suppressed");
  EXPECT_EQ(calls, 1);
}

TEST(LoggerTest, MacrosUseTheGlobalLogger) {
  Logger& global = Logger::global();
  const LogLevel saved = global.level();
  std::string captured;
  global.set_sink([&captured](std::string_view line) {
    captured.assign(line.data(), line.size());
  });
  global.set_level(LogLevel::debug);
  DCFS_LOG_DEBUG("test", "hello", {"k", "v"});
  EXPECT_EQ(captured, "[debug] test: hello k=v");

  captured.clear();
  global.set_level(LogLevel::warn);
  DCFS_LOG_DEBUG("test", "gone");
  EXPECT_TRUE(captured.empty());

  DCFS_LOG_WARN("test", "no fields variant");
  EXPECT_EQ(captured, "[warn] test: no fields variant");

  global.set_sink(nullptr);
  global.set_level(saved);
}

// ------------------------------------------------------------------- json

TEST(JsonTest, ParsesScalarsAndContainers) {
  const auto value = json::parse(
      R"({"a": [1, 2.5, -3], "b": {"nested": true}, "c": null, "d": "x"})");
  ASSERT_TRUE(value.has_value());
  ASSERT_TRUE(value->is_object());
  const json::Value* a = value->find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  EXPECT_EQ(a->as_array().size(), 3u);
  EXPECT_DOUBLE_EQ(a->as_array()[1].as_number(), 2.5);
  EXPECT_DOUBLE_EQ(a->as_array()[2].as_number(), -3.0);
  EXPECT_TRUE(value->find("b")->find("nested")->as_bool());
  EXPECT_TRUE(value->find("c")->is_null());
  EXPECT_EQ(value->find("d")->as_string(), "x");
  EXPECT_EQ(value->find("absent"), nullptr);
}

TEST(JsonTest, ParsesStringEscapes) {
  const auto value = json::parse(R"(["a\"b", "tab\there", "A\n"])");
  ASSERT_TRUE(value.has_value());
  const json::Array& array = value->as_array();
  EXPECT_EQ(array[0].as_string(), "a\"b");
  EXPECT_EQ(array[1].as_string(), "tab\there");
  EXPECT_EQ(array[2].as_string(), "A\n");
}

TEST(JsonTest, RejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(json::parse("", &error).has_value());
  EXPECT_FALSE(json::parse("{", &error).has_value());
  EXPECT_FALSE(json::parse("[1,]", &error).has_value());
  EXPECT_FALSE(json::parse("{\"a\":1} trailing", &error).has_value());
  EXPECT_FALSE(json::parse("nul", &error).has_value());
  EXPECT_FALSE(error.empty());

  // Depth guard: 100 nested arrays exceed kMaxDepth.
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_FALSE(json::parse(deep).has_value());
}

}  // namespace
}  // namespace dcfs::obs
