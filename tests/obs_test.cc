// Unit tests for dcfs::obs — metrics registry, tracer, logger and the
// small JSON parser backing trace validation.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <map>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "obs/json.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/quantile.h"
#include "obs/stage_ledger.h"
#include "obs/trace.h"

namespace dcfs::obs {
namespace {

// ---------------------------------------------------------------- metrics

TEST(RegistryTest, RegistrationIsIdempotent) {
  Registry registry;
  Counter& a = registry.counter("x");
  Counter& b = registry.counter("x");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(&registry.gauge("g"), &registry.gauge("g"));
  Histogram& h1 = registry.histogram("h", {10, 20});
  Histogram& h2 = registry.histogram("h", {999});  // bounds of first win
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.bounds().size(), 2u);
}

TEST(RegistryTest, CounterGaugeBasics) {
  Registry registry;
  Counter& counter = registry.counter("ops");
  counter.inc();
  counter.inc(41);
  EXPECT_EQ(counter.value(), 42u);

  Gauge& gauge = registry.gauge("depth");
  gauge.set(7);
  gauge.add(-3);
  EXPECT_EQ(gauge.value(), 4);
}

TEST(RegistryTest, HistogramBucketPlacement) {
  Registry registry;
  Histogram& h = registry.histogram("lat", {10, 100, 1000});
  h.observe(5);     // <= 10  -> bucket 0
  h.observe(10);    // inclusive upper bound -> bucket 0
  h.observe(11);    // bucket 1
  h.observe(5000);  // overflow bucket
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 5u + 10 + 11 + 5000);
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 0u);
  EXPECT_EQ(h.bucket_count(3), 1u);  // overflow

  const Snapshot snap = registry.snapshot();
  const HistogramSnapshot* hs = snap.histogram("lat");
  ASSERT_NE(hs, nullptr);
  EXPECT_EQ(hs->min, 5u);
  EXPECT_EQ(hs->max, 5000u);
  EXPECT_DOUBLE_EQ(hs->mean(), (5.0 + 10 + 11 + 5000) / 4.0);
  EXPECT_EQ(hs->percentile(50), 10u);   // 2 of 4 in bucket 0
  EXPECT_EQ(hs->percentile(75), 100u);  // 3 of 4 by bucket 1
}

TEST(RegistryTest, SnapshotIsIsolatedFromLaterIncrements) {
  Registry registry;
  Counter& counter = registry.counter("c");
  registry.gauge("g").set(1);
  registry.histogram("h").observe(50);
  counter.inc(10);

  const Snapshot snap = registry.snapshot();
  counter.inc(90);
  registry.gauge("g").set(999);
  registry.histogram("h").observe(50);

  EXPECT_EQ(snap.counter("c"), 10u);
  EXPECT_EQ(snap.gauge("g"), 1);
  EXPECT_EQ(snap.histogram("h")->count, 1u);
  EXPECT_TRUE(snap.has_counter("c"));
  EXPECT_FALSE(snap.has_counter("absent"));
  EXPECT_EQ(snap.counter("absent"), 0u);
  EXPECT_EQ(snap.histogram("absent"), nullptr);
}

TEST(RegistryTest, ConcurrentIncrementsAreLossless) {
  Registry registry;
  Counter& counter = registry.counter("hot");
  Histogram& histogram = registry.histogram("lat");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 100'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter, &histogram] {
      for (int i = 0; i < kPerThread; ++i) {
        counter.inc();
        histogram.observe(100);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(histogram.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(RegistryTest, NullSafeHelpersNoOp) {
  inc(nullptr);
  observe(nullptr, 5);
  set(nullptr, 5);  // must not crash

  Registry registry;
  Counter& counter = registry.counter("c");
  inc(&counter, 3);
  EXPECT_EQ(counter.value(), 3u);
}

TEST(RegistryTest, SnapshotToStringMentionsEveryMetric) {
  Registry registry;
  registry.counter("the.counter").inc();
  registry.gauge("the.gauge").set(-5);
  registry.histogram("the.histogram").observe(42);
  const std::string text = registry.snapshot().to_string();
  EXPECT_NE(text.find("the.counter"), std::string::npos);
  EXPECT_NE(text.find("the.gauge"), std::string::npos);
  EXPECT_NE(text.find("the.histogram"), std::string::npos);
}

TEST(ExportTest, CostAndTrafficExports) {
  Registry registry;
  CostMeter meter(CostProfile::pc());
  // 2x the pc profile's units_per_tick, so the ticks gauge lands on 2.
  meter.charge(CostKind::rolling_hash, 6'000'000);
  export_cost(meter, registry, "client.cpu");

  TrafficMeter traffic;
  traffic.add_up(100, proto::MessageType::sync_record);
  traffic.add_down(40, proto::MessageType::ack);
  export_traffic(traffic, registry, "net");

  const Snapshot snap = registry.snapshot();
  EXPECT_EQ(snap.gauge("client.cpu.units"), 6'000'000);
  EXPECT_EQ(snap.gauge("client.cpu.ticks"), 2);
  EXPECT_EQ(snap.gauge("client.cpu.units.rolling_hash"), 6'000'000);
  EXPECT_EQ(snap.gauge("net.up.bytes"), 100);
  EXPECT_EQ(snap.gauge("net.up.bytes.sync_record"), 100);
  EXPECT_EQ(snap.gauge("net.down.bytes.ack"), 40);
  EXPECT_EQ(snap.gauge("net.down.msgs.ack"), 1);
}

// ----------------------------------------------------------------- tracer

TEST(TracerTest, DisabledTracerRecordsNothing) {
  Tracer tracer;
  { Span span(&tracer, "a"); }
  { Span span(nullptr, "b"); }
  EXPECT_TRUE(tracer.events().empty());
}

TEST(TracerTest, SpansNestAndTimestampFromClock) {
  VirtualClock clock;
  Tracer tracer;
  tracer.enable(clock);
  {
    Span outer(&tracer, "outer");
    clock.advance(100);
    {
      Span inner(&tracer, "inner", "cat");
      clock.advance(50);
    }
    clock.advance(25);
  }
  tracer.disable();

  const std::vector<TraceEvent>& events = tracer.events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].name, "outer");
  EXPECT_EQ(events[0].phase, 'B');
  EXPECT_EQ(events[0].ts, 0);
  EXPECT_EQ(events[1].name, "inner");
  EXPECT_EQ(events[1].ts, 100);
  EXPECT_EQ(events[2].phase, 'E');
  EXPECT_EQ(events[2].ts, 150);
  EXPECT_EQ(events[3].name, "outer");
  EXPECT_EQ(events[3].ts, 175);
  EXPECT_TRUE(well_nested(events));
  EXPECT_EQ(tracer.open_spans(), 0u);
}

TEST(TracerTest, DeterministicUnderManualClock) {
  const auto record = [] {
    VirtualClock clock;
    Tracer tracer;
    tracer.enable(clock);
    tracer.set_process(7, "run");
    for (int i = 0; i < 10; ++i) {
      Span span(&tracer, "op");
      clock.advance(13);
      tracer.instant("mark");
    }
    tracer.disable();
    return tracer.to_chrome_json();
  };
  EXPECT_EQ(record(), record());  // byte-identical across runs
}

TEST(TracerTest, EndAfterDisableStillUnwinds) {
  VirtualClock clock;
  Tracer tracer;
  tracer.enable(clock);
  tracer.begin("a");
  tracer.disable();
  tracer.end();  // must not crash; uses the begin timestamp
  EXPECT_EQ(tracer.open_spans(), 0u);
  EXPECT_TRUE(well_nested(tracer.events()));
}

TEST(TracerTest, CapacityDropsButStaysBalanced) {
  VirtualClock clock;
  Tracer tracer;
  tracer.set_capacity(6);
  tracer.enable(clock);
  for (int i = 0; i < 10; ++i) {
    Span span(&tracer, "s");
    clock.advance(1);
  }
  tracer.disable();
  EXPECT_GT(tracer.dropped(), 0u);
  EXPECT_EQ(tracer.open_spans(), 0u);
  EXPECT_LE(tracer.events().size(), 6u);
  EXPECT_TRUE(well_nested(tracer.events()));
}

TEST(TracerTest, WellNestedRejectsMismatchedTracks) {
  std::vector<TraceEvent> bad;
  bad.push_back({"a", "", 'B', 0, 1, 1});
  bad.push_back({"b", "", 'E', 1, 1, 1});  // closes "a" under the wrong name
  EXPECT_FALSE(well_nested(bad));

  std::vector<TraceEvent> unclosed;
  unclosed.push_back({"a", "", 'B', 0, 1, 1});
  EXPECT_FALSE(well_nested(unclosed));

  // Same names on different (pid, tid) tracks don't interfere.
  std::vector<TraceEvent> tracks;
  tracks.push_back({"a", "", 'B', 0, 1, 1});
  tracks.push_back({"a", "", 'B', 0, 2, 1});
  tracks.push_back({"a", "", 'E', 1, 2, 1});
  tracks.push_back({"a", "", 'E', 1, 1, 1});
  EXPECT_TRUE(well_nested(tracks));
}

TEST(TracerTest, GoldenChromeJsonValidates) {
  VirtualClock clock;
  Tracer tracer;
  tracer.enable(clock);
  tracer.set_process(1, "proc \"one\"");  // name needing escapes
  {
    Span outer(&tracer, "outer");
    clock.advance(10);
    Span inner(&tracer, "in\\ner");
    clock.advance(10);
  }
  tracer.disable();

  const std::string json = tracer.to_chrome_json();
  std::string error;
  std::size_t count = 0;
  EXPECT_TRUE(validate_chrome_trace(json, &error, &count)) << error;
  EXPECT_EQ(count, 4u);

  EXPECT_FALSE(validate_chrome_trace("not json"));
  EXPECT_FALSE(validate_chrome_trace("{\"other\": 1}"));
  // An E with no matching B must be rejected.
  EXPECT_FALSE(validate_chrome_trace(
      R"({"traceEvents":[{"name":"x","ph":"E","ts":0,"pid":1,"tid":1}]})"));
}

TEST(TracerTest, SummaryAggregatesPerName) {
  VirtualClock clock;
  Tracer tracer;
  tracer.enable(clock);
  for (int i = 0; i < 3; ++i) {
    Span span(&tracer, "work");
    clock.advance(100);
  }
  tracer.disable();
  const std::string summary = tracer.summary();
  EXPECT_NE(summary.find("work"), std::string::npos);
  EXPECT_NE(summary.find("3"), std::string::npos);    // count
  EXPECT_NE(summary.find("300"), std::string::npos);  // total µs
}

// ----------------------------------------------------------------- logger

TEST(LoggerTest, LevelFromEnvPrecedence) {
  EXPECT_EQ(level_from_env(nullptr, nullptr), LogLevel::warn);
  EXPECT_EQ(level_from_env("debug", nullptr), LogLevel::debug);
  EXPECT_EQ(level_from_env("TRACE", nullptr), LogLevel::trace);
  EXPECT_EQ(level_from_env("warning", nullptr), LogLevel::warn);
  EXPECT_EQ(level_from_env("off", "1"), LogLevel::off);
  // DCFS_LOG wins over the legacy flag.
  EXPECT_EQ(level_from_env("error", "1"), LogLevel::error);
  // DCFS_DEBUG=1 is a legacy alias for debug; "0" means unset.
  EXPECT_EQ(level_from_env(nullptr, "1"), LogLevel::debug);
  EXPECT_EQ(level_from_env(nullptr, "0"), LogLevel::warn);
  EXPECT_EQ(level_from_env("", "1"), LogLevel::debug);
  EXPECT_EQ(level_from_env("bogus", nullptr), LogLevel::warn);
}

TEST(LoggerTest, FormatsComponentMessageAndFields) {
  Logger logger(LogLevel::debug);
  std::string captured;
  logger.set_sink([&captured](std::string_view line) {
    captured.assign(line.data(), line.size());
  });
  logger.log(LogLevel::debug, "client", "delta replace",
             {{"path", "/sync/a b"}, {"bytes", 123}, {"ok", true}});
  EXPECT_EQ(captured,
            "[debug] client: delta replace path=\"/sync/a b\" bytes=123 "
            "ok=true");
}

TEST(LoggerTest, ThresholdGatesEmission) {
  Logger logger(LogLevel::warn);
  int calls = 0;
  logger.set_sink([&calls](std::string_view) { ++calls; });
  EXPECT_FALSE(logger.enabled(LogLevel::debug));
  logger.log(LogLevel::debug, "c", "suppressed");
  EXPECT_EQ(calls, 0);
  logger.log(LogLevel::error, "c", "emitted");
  EXPECT_EQ(calls, 1);
  logger.set_level(LogLevel::off);
  logger.log(LogLevel::error, "c", "also suppressed");
  EXPECT_EQ(calls, 1);
}

TEST(LoggerTest, MacrosUseTheGlobalLogger) {
  Logger& global = Logger::global();
  const LogLevel saved = global.level();
  std::string captured;
  global.set_sink([&captured](std::string_view line) {
    captured.assign(line.data(), line.size());
  });
  global.set_level(LogLevel::debug);
  DCFS_LOG_DEBUG("test", "hello", {"k", "v"});
  EXPECT_EQ(captured, "[debug] test: hello k=v");

  captured.clear();
  global.set_level(LogLevel::warn);
  DCFS_LOG_DEBUG("test", "gone");
  EXPECT_TRUE(captured.empty());

  DCFS_LOG_WARN("test", "no fields variant");
  EXPECT_EQ(captured, "[warn] test: no fields variant");

  global.set_sink(nullptr);
  global.set_level(saved);
}

// ------------------------------------------------------------------- json

TEST(JsonTest, ParsesScalarsAndContainers) {
  const auto value = json::parse(
      R"({"a": [1, 2.5, -3], "b": {"nested": true}, "c": null, "d": "x"})");
  ASSERT_TRUE(value.has_value());
  ASSERT_TRUE(value->is_object());
  const json::Value* a = value->find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  EXPECT_EQ(a->as_array().size(), 3u);
  EXPECT_DOUBLE_EQ(a->as_array()[1].as_number(), 2.5);
  EXPECT_DOUBLE_EQ(a->as_array()[2].as_number(), -3.0);
  EXPECT_TRUE(value->find("b")->find("nested")->as_bool());
  EXPECT_TRUE(value->find("c")->is_null());
  EXPECT_EQ(value->find("d")->as_string(), "x");
  EXPECT_EQ(value->find("absent"), nullptr);
}

TEST(JsonTest, ParsesStringEscapes) {
  const auto value = json::parse(R"(["a\"b", "tab\there", "A\n"])");
  ASSERT_TRUE(value.has_value());
  const json::Array& array = value->as_array();
  EXPECT_EQ(array[0].as_string(), "a\"b");
  EXPECT_EQ(array[1].as_string(), "tab\there");
  EXPECT_EQ(array[2].as_string(), "A\n");
}

// ---------------------------------------------------------------- quantile

TEST(QuantileTest, SmallValuesAreExact) {
  QuantileSketch sketch;
  for (std::uint64_t v = 0; v < 8; ++v) sketch.record(v);
  EXPECT_EQ(sketch.count(), 8u);
  EXPECT_EQ(sketch.min(), 0u);
  EXPECT_EQ(sketch.max(), 7u);
  // Values below 8 get a dedicated bucket each — quantiles are exact.
  EXPECT_EQ(sketch.quantile(0.0), 0u);
  EXPECT_EQ(sketch.quantile(0.5), 3u);
  EXPECT_EQ(sketch.quantile(1.0), 7u);
}

TEST(QuantileTest, RankErrorBoundHolds) {
  // The log-bucketing promises every reported quantile is within 1/16
  // relative error of the true value; check across magnitudes.
  QuantileSketch sketch;
  std::vector<std::uint64_t> values;
  std::uint64_t v = 1;
  for (int i = 0; i < 40; ++i) {
    values.push_back(v);
    sketch.record(v);
    v = v * 3 / 2 + 1;  // spans ~1 .. ~10^7
  }
  std::sort(values.begin(), values.end());
  for (const double q : {0.10, 0.25, 0.50, 0.75, 0.90, 0.99}) {
    const auto rank = static_cast<std::size_t>(
        std::max<std::int64_t>(
            0, static_cast<std::int64_t>(
                   std::ceil(q * static_cast<double>(values.size()))) -
                   1));
    const double truth = static_cast<double>(values[rank]);
    const double reported = static_cast<double>(sketch.quantile(q));
    EXPECT_NEAR(reported, truth, truth / 8.0 + 1.0) << "q=" << q;
  }
}

TEST(QuantileTest, MergeIsAssociativeAndLossless) {
  QuantileSketch a, b, c;
  for (std::uint64_t v = 1; v < 500; v += 3) a.record(v * 17);
  for (std::uint64_t v = 1; v < 500; v += 3) b.record(v * 5 + 2);
  for (std::uint64_t v = 1; v < 100; ++v) c.record(v);

  // (a ⊕ b) ⊕ c  ==  a ⊕ (b ⊕ c): fold left vs fold right.
  QuantileSketch left = a;
  left.merge(b);
  left.merge(c);
  QuantileSketch bc = b;
  bc.merge(c);
  QuantileSketch right = a;
  right.merge(bc);

  EXPECT_EQ(left.count(), right.count());
  EXPECT_EQ(left.sum(), right.sum());
  EXPECT_EQ(left.min(), right.min());
  EXPECT_EQ(left.max(), right.max());
  for (const double q : {0.01, 0.25, 0.5, 0.75, 0.95, 0.99}) {
    EXPECT_EQ(left.quantile(q), right.quantile(q)) << "q=" << q;
  }
  // Merging preserves totals exactly (buckets are plain counters).
  EXPECT_EQ(left.count(), a.count() + b.count() + c.count());
  EXPECT_EQ(left.sum(), a.sum() + b.sum() + c.sum());
}

TEST(QuantileTest, BucketIndexAndRepresentativeAgree) {
  // Every value's representative must live in the same bucket as the value
  // (the round-trip property behind the relative-error bound).
  for (std::uint64_t v : {0ull, 1ull, 7ull, 8ull, 9ull, 100ull, 1023ull,
                          1024ull, 999'983ull, 1ull << 40}) {
    const std::size_t index = QuantileSketch::bucket_index(v);
    ASSERT_LT(index, QuantileSketch::kBuckets);
    EXPECT_EQ(QuantileSketch::bucket_index(
                  QuantileSketch::bucket_representative(index)),
              index)
        << "v=" << v;
  }
}

TEST(StageLedgerTest, RecordsAndMergesPerStage) {
  StageLedger a;
  a.record(Stage::delta, 120);
  a.record(Stage::delta, 480);
  a.record(Stage::apply, 40);
  StageLedger b;
  b.record(Stage::delta, 240);
  a.merge(b);
  EXPECT_EQ(a.sketch(Stage::delta).count(), 3u);
  EXPECT_EQ(a.sketch(Stage::delta).sum(), 840u);
  EXPECT_EQ(a.sketch(Stage::apply).count(), 1u);
  EXPECT_EQ(a.sketch(Stage::signature).count(), 0u);
  const std::string table = a.to_string();
  EXPECT_NE(table.find("delta"), std::string::npos);
  EXPECT_NE(table.find("apply"), std::string::npos);
  EXPECT_EQ(table.find("signature"), std::string::npos);  // empty rows hidden
}

// ------------------------------------------------- concurrent attribution

TEST(TracerTest, ConcurrentSpansLandOnTheirOwnTracks) {
  VirtualClock clock;
  Tracer tracer;
  tracer.enable(clock);
  const NameId name = tracer.intern("worker.op");

  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer, name, t] {
      tracer.register_thread("worker-" + std::to_string(t));
      for (int i = 0; i < kSpansPerThread; ++i) {
        tracer.begin(name);
        tracer.end();
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  // No interleaving corruption: every track balances, nothing was dropped,
  // and each thread's spans are attributed to its own registered track.
  const std::vector<TraceEvent> events = tracer.events();
  EXPECT_EQ(events.size(),
            static_cast<std::size_t>(kThreads) * kSpansPerThread * 2);
  EXPECT_TRUE(well_nested(events));
  EXPECT_EQ(tracer.dropped(), 0u);
  std::map<std::uint32_t, std::size_t> per_tid;
  for (const TraceEvent& event : events) ++per_tid[event.tid];
  EXPECT_EQ(per_tid.size(), static_cast<std::size_t>(kThreads));
  for (const auto& [tid, count] : per_tid) {
    EXPECT_EQ(count, static_cast<std::size_t>(kSpansPerThread) * 2)
        << "tid=" << tid;
  }
  std::string error;
  EXPECT_TRUE(validate_chrome_trace(tracer.to_chrome_json(), &error))
      << error;
}

// Regression (annotation sweep): Tracer::clock_ and Tracer::max_events_ were
// plain fields written by the driving thread (enable/disable/set_capacity)
// while worker threads read them in begin()/instant()/emit_flow().  Both are
// atomics now and the hot paths load them once per event.  This hammers
// reconfiguration against concurrent emission — TSan (CI) would flag the old
// plain-field races — and checks the tracks still balance.
TEST(TracerTest, ReconfigurationRacesWithEmissionStayBalanced) {
  VirtualClock clock;
  Tracer tracer;
  tracer.enable(clock);
  const NameId name = tracer.intern("race.op");

  std::atomic<bool> stop{false};
  constexpr int kThreads = 3;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer, &stop, name, t] {
      tracer.register_thread("racer-" + std::to_string(t));
      while (!stop.load(std::memory_order_acquire)) {
        tracer.begin(name);
        tracer.instant(name);
        tracer.end();
      }
    });
  }

  // Flip capacity between tiny and huge and bounce enable/disable while the
  // workers emit.  Every combination must stay crash-free and balanced.
  for (int i = 0; i < 500; ++i) {
    tracer.set_capacity(i % 2 == 0 ? 8 : 4'000'000);
    if (i % 50 == 25) {
      tracer.disable();
      tracer.enable(clock);
    }
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& thread : threads) thread.join();
  tracer.disable();

  EXPECT_EQ(tracer.open_spans(), 0u);
  EXPECT_TRUE(well_nested(tracer.events()));
}

// --------------------------------------------------- histogram consistency

TEST(RegistryTest, HistogramSnapshotIsInternallyConsistent) {
  // Writers hammer one histogram while readers snapshot: any snapshot that
  // reports `consistent` must have counts/count/sum that agree (the seqlock
  // retry in Histogram::read_consistent).  Run under TSan in CI.
  Registry registry;
  Histogram& histogram = registry.histogram("h", {10, 100, 1000});
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  writers.reserve(3);
  for (int t = 0; t < 3; ++t) {
    writers.emplace_back([&histogram, &stop, t] {
      std::uint64_t v = static_cast<std::uint64_t>(t) + 1;
      while (!stop.load(std::memory_order_relaxed)) {
        histogram.observe(v);
        v = (v * 7 + 3) % 2000;
      }
    });
  }

  for (int i = 0; i < 200; ++i) {
    const Snapshot snap = registry.snapshot();
    const HistogramSnapshot* h = snap.histogram("h");
    ASSERT_NE(h, nullptr);
    if (!h->consistent) continue;  // retry budget exhausted: no claim made
    std::uint64_t bucket_total = 0;
    for (const std::uint64_t c : h->counts) bucket_total += c;
    EXPECT_EQ(bucket_total, h->count);
    if (h->count > 0) {
      EXPECT_GE(h->mean(), static_cast<double>(h->min));
      EXPECT_LE(h->mean(), static_cast<double>(h->max));
    }
  }
  stop.store(true);
  for (std::thread& writer : writers) writer.join();

  // Quiescent snapshot is always consistent and exact.
  const Snapshot snap = registry.snapshot();
  const HistogramSnapshot* h = snap.histogram("h");
  ASSERT_NE(h, nullptr);
  EXPECT_TRUE(h->consistent);
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t c : h->counts) bucket_total += c;
  EXPECT_EQ(bucket_total, h->count);
}

TEST(JsonTest, RejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(json::parse("", &error).has_value());
  EXPECT_FALSE(json::parse("{", &error).has_value());
  EXPECT_FALSE(json::parse("[1,]", &error).has_value());
  EXPECT_FALSE(json::parse("{\"a\":1} trailing", &error).has_value());
  EXPECT_FALSE(json::parse("nul", &error).has_value());
  EXPECT_FALSE(error.empty());

  // Depth guard: 100 nested arrays exceed kMaxDepth.
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_FALSE(json::parse(deep).has_value());
}

}  // namespace
}  // namespace dcfs::obs
