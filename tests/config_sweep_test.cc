// Configuration sweeps: DeltaCFS must stay correct (cloud == local, no
// protocol errors) across its whole configuration space — block sizes,
// upload delays, relation timeouts, causality modes, compression, and
// checksums — not just at the defaults the benches use.
#include <gtest/gtest.h>

#include <tuple>

#include "baselines/deltacfs_system.h"
#include "common/rng.h"

namespace dcfs {
namespace {

/// A condensed mixed workload: in-place writes, a transactional save, a
/// delete-recreate, and a truncate — every sync path in one run.
void run_mixed_workload(DeltaCfsSystem& system, VirtualClock& clock,
                        Bytes& doc) {
  auto tick_for = [&](Duration d) {
    for (Duration t = 0; t < d; t += milliseconds(200)) {
      clock.advance(milliseconds(200));
      system.tick(clock.now());
    }
  };
  Rng rng(42);

  system.fs().write_file("/sync/doc", doc);
  tick_for(seconds(8));

  // In-place writes.
  {
    Result<FileHandle> handle = system.fs().open("/sync/doc");
    const Bytes patch = rng.bytes(500);
    system.fs().write(*handle, 1000, patch);
    system.fs().close(*handle);
    std::copy(patch.begin(), patch.end(), doc.begin() + 1000);
  }
  tick_for(seconds(6));

  // Transactional save with a small edit.
  doc[doc.size() / 2] ^= 0x18;
  system.fs().rename("/sync/doc", "/sync/doc.bak");
  system.fs().write_file("/sync/doc.tmp", doc);
  system.fs().rename("/sync/doc.tmp", "/sync/doc");
  system.fs().unlink("/sync/doc.bak");
  tick_for(seconds(6));

  // Delete-then-recreate.
  system.fs().unlink("/sync/doc");
  doc[7] ^= 0x01;
  system.fs().write_file("/sync/doc", doc);
  tick_for(seconds(6));

  // Truncate.
  doc.resize(doc.size() * 3 / 4);
  system.fs().truncate("/sync/doc", doc.size());
  tick_for(seconds(8));
  system.finish(clock.now());
  system.tick(clock.now());
}

struct SweepPoint {
  std::uint32_t block_size;
  Duration upload_delay;
  Duration relation_timeout;
  CausalityMode causality;
  bool compress;
  bool checksums;
};

class ConfigSweepTest : public ::testing::TestWithParam<SweepPoint> {};

TEST_P(ConfigSweepTest, MixedWorkloadConverges) {
  const SweepPoint point = GetParam();
  ClientConfig config;
  config.delta_block_size = point.block_size;
  config.upload_delay = point.upload_delay;
  config.relation_timeout = point.relation_timeout;
  config.causality = point.causality;
  config.compress_uploads = point.compress;
  config.enable_checksums = point.checksums;

  VirtualClock clock;
  DeltaCfsSystem system(clock, CostProfile::pc(), NetProfile::pc_wan(),
                        config);
  system.fs().mkdir("/sync");

  Rng rng(7);
  Bytes doc = rng.bytes(150'000);
  run_mixed_workload(system, clock, doc);

  Result<Bytes> cloud = system.server().fetch("/sync/doc");
  ASSERT_TRUE(cloud.is_ok());
  EXPECT_EQ(*cloud, doc);
  EXPECT_EQ(system.client().conflicts_acked(), 0u);
  EXPECT_EQ(system.client().errors_acked(), 0u);
  if (point.checksums) {
    EXPECT_TRUE(system.client().detected_corruption().empty());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Points, ConfigSweepTest,
    ::testing::Values(
        // Defaults.
        SweepPoint{4096, seconds(3), seconds(2), CausalityMode::backindex,
                   false, false},
        // Small and large delta blocks.
        SweepPoint{512, seconds(3), seconds(2), CausalityMode::backindex,
                   false, false},
        SweepPoint{65536, seconds(3), seconds(2), CausalityMode::backindex,
                   false, false},
        // Aggressive and lazy upload delays.
        SweepPoint{4096, milliseconds(200), seconds(2),
                   CausalityMode::backindex, false, false},
        SweepPoint{4096, seconds(10), seconds(2), CausalityMode::backindex,
                   false, false},
        // Relation timeout extremes (the trigger itself is same-tick here).
        SweepPoint{4096, seconds(3), seconds(1), CausalityMode::backindex,
                   false, false},
        SweepPoint{4096, seconds(3), seconds(5), CausalityMode::backindex,
                   false, false},
        // Snapshot causality, short and long intervals.
        SweepPoint{4096, seconds(3), seconds(2), CausalityMode::snapshot,
                   false, false},
        // Compression and checksums, individually and together.
        SweepPoint{4096, seconds(3), seconds(2), CausalityMode::backindex,
                   true, false},
        SweepPoint{4096, seconds(3), seconds(2), CausalityMode::backindex,
                   false, true},
        SweepPoint{4096, seconds(3), seconds(2), CausalityMode::backindex,
                   true, true},
        // Everything non-default at once.
        SweepPoint{1024, seconds(1), seconds(1), CausalityMode::snapshot,
                   true, true}));

}  // namespace
}  // namespace dcfs
