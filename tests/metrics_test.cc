#include <gtest/gtest.h>

#include "metrics/cost.h"
#include "metrics/traffic.h"

namespace dcfs {
namespace {

TEST(CostMeterTest, ChargesPerByteAndPerOp) {
  CostMeter meter(CostProfile::pc());
  EXPECT_EQ(meter.units(), 0u);
  EXPECT_EQ(meter.ticks(), 0u);

  // rolling_hash is the 1 unit/byte reference with no per-op cost.
  meter.charge(CostKind::rolling_hash, 1'000'000);
  EXPECT_EQ(meter.units(), 1'000'000u);
  EXPECT_EQ(meter.ticks(),
            1'000'000 / CostProfile::pc().units_per_tick);

  meter.reset();
  EXPECT_EQ(meter.units(), 0u);
}

TEST(CostMeterTest, StrongHashCostsFiveTimesRolling) {
  CostMeter rolling(CostProfile::pc());
  CostMeter strong(CostProfile::pc());
  rolling.charge(CostKind::rolling_hash, 1'000'000);
  strong.charge(CostKind::strong_hash, 1'000'000);
  EXPECT_NEAR(static_cast<double>(strong.units()) /
                  static_cast<double>(rolling.units()),
              5.0, 0.1);
}

TEST(CostMeterTest, PerOpFixedCostsAccumulate) {
  CostMeter meter(CostProfile::pc());
  for (int i = 0; i < 100; ++i) meter.charge_op(CostKind::syscall);
  EXPECT_EQ(meter.units(), 100u * CostProfile::pc().per_op[static_cast<int>(
                               CostKind::syscall)]);
}

TEST(CostMeterTest, BreakdownByKind) {
  CostMeter meter(CostProfile::pc());
  meter.charge(CostKind::rolling_hash, 100);
  meter.charge(CostKind::byte_compare, 400);
  EXPECT_EQ(meter.units_for(CostKind::rolling_hash), 100u);
  EXPECT_EQ(meter.units_for(CostKind::byte_compare), 100u);  // 0.25/byte
  EXPECT_EQ(meter.units_for(CostKind::strong_hash), 0u);
}

TEST(CostProfileTest, MobileTicksAreDearer) {
  // Same algorithmic work yields ~10x more ticks on the mobile profile.
  CostMeter pc(CostProfile::pc());
  CostMeter mobile(CostProfile::mobile());
  pc.charge(CostKind::rolling_hash, 50'000'000);
  mobile.charge(CostKind::rolling_hash, 50'000'000);
  EXPECT_GE(mobile.ticks(), 9 * pc.ticks());
}

TEST(CostProfileTest, AllKindsHaveNames) {
  for (std::size_t i = 0; i < kCostKindCount; ++i) {
    EXPECT_NE(to_string(static_cast<CostKind>(i)), "unknown");
  }
}

TEST(TrafficMeterTest, DirectionalAccounting) {
  TrafficMeter meter;
  meter.add_up(1000);
  meter.add_up(500);
  meter.add_down(250);
  EXPECT_EQ(meter.up_bytes(), 1500u);
  EXPECT_EQ(meter.down_bytes(), 250u);
  EXPECT_EQ(meter.up_messages(), 2u);
  EXPECT_EQ(meter.down_messages(), 1u);
  EXPECT_EQ(meter.total_bytes(), 1750u);
  EXPECT_DOUBLE_EQ(meter.tue(1750), 1.0);
  meter.reset();
  EXPECT_EQ(meter.total_bytes(), 0u);
}

TEST(TrafficMeterTest, PerMessageTypeBreakdown) {
  TrafficMeter meter;
  meter.add_up(1000, proto::MessageType::sync_record);
  meter.add_up(500, proto::MessageType::sync_record);
  meter.add_up(40);  // defaults to `other`
  meter.add_down(30, proto::MessageType::ack);
  meter.add_down(2000, proto::MessageType::forward);

  EXPECT_EQ(meter.up_bytes(proto::MessageType::sync_record), 1500u);
  EXPECT_EQ(meter.up_messages(proto::MessageType::sync_record), 2u);
  EXPECT_EQ(meter.up_bytes(proto::MessageType::other), 40u);
  EXPECT_EQ(meter.up_bytes(proto::MessageType::ack), 0u);
  EXPECT_EQ(meter.down_bytes(proto::MessageType::ack), 30u);
  EXPECT_EQ(meter.down_bytes(proto::MessageType::forward), 2000u);
  EXPECT_EQ(meter.down_messages(proto::MessageType::forward), 1u);

  // Typed breakdown sums to the directional totals.
  std::uint64_t up_sum = 0;
  std::uint64_t down_sum = 0;
  for (std::size_t i = 0; i < proto::kMessageTypeCount; ++i) {
    const auto type = static_cast<proto::MessageType>(i);
    up_sum += meter.up_bytes(type);
    down_sum += meter.down_bytes(type);
  }
  EXPECT_EQ(up_sum, meter.up_bytes());
  EXPECT_EQ(down_sum, meter.down_bytes());

  meter.reset();
  EXPECT_EQ(meter.up_bytes(proto::MessageType::sync_record), 0u);
  EXPECT_EQ(meter.down_messages(proto::MessageType::ack), 0u);
}

TEST(MessageTypeTest, NamesAreStable) {
  EXPECT_EQ(proto::to_string(proto::MessageType::sync_record), "sync_record");
  EXPECT_EQ(proto::to_string(proto::MessageType::ack), "ack");
  EXPECT_EQ(proto::to_string(proto::MessageType::forward), "forward");
  EXPECT_EQ(proto::to_string(proto::MessageType::other), "other");
}

TEST(CostMeterTest, SnapshotMatchesAccessors) {
  CostMeter meter(CostProfile::pc());
  meter.charge(CostKind::rolling_hash, 100'000);
  meter.charge(CostKind::byte_compare, 400'000);
  meter.charge_op(CostKind::syscall);

  const CostSnapshot snap = meter.snapshot();
  EXPECT_EQ(snap.total_units, meter.units());
  EXPECT_EQ(snap.ticks, meter.ticks());
  for (std::size_t i = 0; i < kCostKindCount; ++i) {
    EXPECT_EQ(snap.units_by_kind[i],
              meter.units_for(static_cast<CostKind>(i)))
        << to_string(static_cast<CostKind>(i));
  }

  // The per-kind breakdown accounts for every charged unit.
  std::uint64_t sum = 0;
  for (const std::uint64_t units : snap.units_by_kind) sum += units;
  EXPECT_EQ(sum, snap.total_units);

  // A snapshot is a copy: later charges don't mutate it.
  meter.charge(CostKind::rolling_hash, 50'000);
  EXPECT_EQ(snap.total_units + 50'000, meter.snapshot().total_units);
}

}  // namespace
}  // namespace dcfs
