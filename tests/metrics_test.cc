#include <gtest/gtest.h>

#include "metrics/cost.h"
#include "metrics/traffic.h"

namespace dcfs {
namespace {

TEST(CostMeterTest, ChargesPerByteAndPerOp) {
  CostMeter meter(CostProfile::pc());
  EXPECT_EQ(meter.units(), 0u);
  EXPECT_EQ(meter.ticks(), 0u);

  // rolling_hash is the 1 unit/byte reference with no per-op cost.
  meter.charge(CostKind::rolling_hash, 1'000'000);
  EXPECT_EQ(meter.units(), 1'000'000u);
  EXPECT_EQ(meter.ticks(),
            1'000'000 / CostProfile::pc().units_per_tick);

  meter.reset();
  EXPECT_EQ(meter.units(), 0u);
}

TEST(CostMeterTest, StrongHashCostsFiveTimesRolling) {
  CostMeter rolling(CostProfile::pc());
  CostMeter strong(CostProfile::pc());
  rolling.charge(CostKind::rolling_hash, 1'000'000);
  strong.charge(CostKind::strong_hash, 1'000'000);
  EXPECT_NEAR(static_cast<double>(strong.units()) /
                  static_cast<double>(rolling.units()),
              5.0, 0.1);
}

TEST(CostMeterTest, PerOpFixedCostsAccumulate) {
  CostMeter meter(CostProfile::pc());
  for (int i = 0; i < 100; ++i) meter.charge_op(CostKind::syscall);
  EXPECT_EQ(meter.units(), 100u * CostProfile::pc().per_op[static_cast<int>(
                               CostKind::syscall)]);
}

TEST(CostMeterTest, BreakdownByKind) {
  CostMeter meter(CostProfile::pc());
  meter.charge(CostKind::rolling_hash, 100);
  meter.charge(CostKind::byte_compare, 400);
  EXPECT_EQ(meter.units_for(CostKind::rolling_hash), 100u);
  EXPECT_EQ(meter.units_for(CostKind::byte_compare), 100u);  // 0.25/byte
  EXPECT_EQ(meter.units_for(CostKind::strong_hash), 0u);
}

TEST(CostProfileTest, MobileTicksAreDearer) {
  // Same algorithmic work yields ~10x more ticks on the mobile profile.
  CostMeter pc(CostProfile::pc());
  CostMeter mobile(CostProfile::mobile());
  pc.charge(CostKind::rolling_hash, 50'000'000);
  mobile.charge(CostKind::rolling_hash, 50'000'000);
  EXPECT_GE(mobile.ticks(), 9 * pc.ticks());
}

TEST(CostProfileTest, AllKindsHaveNames) {
  for (std::size_t i = 0; i < kCostKindCount; ++i) {
    EXPECT_NE(to_string(static_cast<CostKind>(i)), "unknown");
  }
}

TEST(TrafficMeterTest, DirectionalAccounting) {
  TrafficMeter meter;
  meter.add_up(1000);
  meter.add_up(500);
  meter.add_down(250);
  EXPECT_EQ(meter.up_bytes(), 1500u);
  EXPECT_EQ(meter.down_bytes(), 250u);
  EXPECT_EQ(meter.up_messages(), 2u);
  EXPECT_EQ(meter.down_messages(), 1u);
  EXPECT_EQ(meter.total_bytes(), 1750u);
  EXPECT_DOUBLE_EQ(meter.tue(1750), 1.0);
  meter.reset();
  EXPECT_EQ(meter.total_bytes(), 0u);
}

}  // namespace
}  // namespace dcfs
